package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/types"
)

// Distributed hash shuffle (DESIGN.md "Distributed shuffle & general joins").
//
// When the planner attaches a ShuffleSpec, the query stops being a pure
// scatter/gather: every fact (and build-table) partition becomes a *map*
// task that scans, hash-partitions its rows on the join/group keys, and
// ships keyed frames sideways to *reducers* (the stems). Each reducer owns
// partitions pi where pi % len(reducers) == its index, stages incoming
// frames per (side, map ordinal, attempt), and on the end-marker verifies
// the frame counts and commits the attempt — first complete attempt wins,
// which keeps retries deterministic: any attempt of a map task partitions
// identical input identically, so whichever attempt commits, the reduce
// sees the same bag of rows. The master then sends each reducer one reduce
// request; the reducer runs the partitioned hash join (or partial-aggregate
// merge) per owned partition under a memory grant, spilling to global
// storage past it, and returns a merged TaskResult.
//
// Failure policy: a map task that exhausts its retries fails the query with
// ErrShuffleFailed even under QueryOptions.PartialResults — dropping a map
// task would silently drop join matches, unlike the scatter/gather path
// where a lost task only loses its own partition's rows.

// ErrShuffleFailed marks a repartitioned query that permanently lost a map
// or reduce stage. Shuffle queries cannot degrade to partial results, so
// this typed error is returned even when QueryOptions.PartialResults is set.
var ErrShuffleFailed = errors.New("cluster: shuffle stage failed permanently")

const (
	shuffleSideProbe = "probe"
	shuffleSideBuild = "build"
	shuffleSideGroup = "group"

	// shuffleFrameRows bounds rows (or groups) per shuffle frame so transfer
	// billing and fault injection see a stream of bounded messages, not one
	// giant blob per partition.
	shuffleFrameRows = 256
)

// shuffleTaskMsg asks a leaf to run one map task: scan the partition with
// the side's sub-plan, hash-partition the output, and ship keyed frames to
// the reducers.
type shuffleTaskMsg struct {
	Task       plan.TaskSpec
	QueryID    string
	Exchange   string // exchange ID, unique per query
	Side       string // shuffleSideProbe | shuffleSideBuild | shuffleSideGroup
	Attempt    int
	Partitions int
	Keys       int // leading key columns in each map-output row (join sides)
	Reducers   []string
}

// shuffleTaskReply carries no data — rows went sideways to the reducers.
// It reports the scan cost and the per-partition transfer accounting.
type shuffleTaskReply struct {
	SimTime     time.Duration         // scan + local CPU, excluding shipping
	TransferSim map[int]time.Duration // per-partition simulated ship time
	PartBytes   map[int]int64         // per-partition bytes shipped
	Rows        int
	DevBytes    map[string]int64
}

// shuffleFrameMsg is one keyed frame of map output for a single partition.
// Exactly one of Rows/Groups is set (join vs group-by shuffle).
type shuffleFrameMsg struct {
	Exchange  string
	QueryID   string
	Side      string
	Ordinal   int
	Attempt   int
	Partition int
	Rows      [][]types.Value
	Groups    *exec.Groups
	Size      int64
}

// shuffleEndMsg is the map task's commit marker to one reducer: the exact
// per-partition frame counts it shipped there. The reducer verifies its
// staged counts match (catching dropped and duplicated frames) before
// committing the attempt.
type shuffleEndMsg struct {
	Exchange string
	QueryID  string
	Side     string
	Ordinal  int
	Attempt  int
	Frames   map[int]int
	Leaf     string
}

// shuffleReduceMsg asks a reducer to join/merge its owned partitions from
// the committed map outputs and return one merged TaskResult.
type shuffleReduceMsg struct {
	Exchange      string
	QueryID       string
	Plan          *plan.PhysicalPlan
	Partitions    []int
	ProbeOrdinals []int
	BuildOrdinals []int
	GroupOrdinals []int
	SpillPrefix   string
}

type shuffleReduceReply struct {
	Result     *exec.TaskResult
	PartSim    map[int]time.Duration // per-partition simulated reduce time
	SpillBytes int64
	DevBytes   map[string]int64
}

// shuffleCleanupMsg drops all staged/committed state for an exchange
// (best-effort broadcast after the query finishes or fails).
type shuffleCleanupMsg struct {
	Exchange string
}

type shuffleAck struct{}

// ---------------------------------------------------------------------------
// Leaf side: map tasks.

// runShuffleTask executes one map task: scan like a normal task, then
// hash-partition the output and ship frames to the reducers. Each
// partition's frames are billed to a private bill so the reply can report
// per-partition transfer sim (Fabric.Call charges transfer automatically
// from the context bill when the route crosses racks).
func (l *LeafServer) runShuffleTask(ctx context.Context, msg shuffleTaskMsg) (any, error) {
	l.active.Add(1)
	defer l.active.Add(-1)
	l.Tasks.Inc()
	ctx, span := trace.StartSpan(ctx, "leaf/"+l.Name)
	defer span.Finish()
	span.SetAttr("partition", msg.Task.Partition.Path)
	if d := l.Stall(); d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	bill := sim.NewBill()
	res, err := exec.RunTaskModel(storage.WithBill(ctx, bill), msg.Task, l.Reader, l.Index, l.Model)
	if err != nil {
		return nil, err
	}
	l.chargeRemoteRead(ctx, bill, msg.Task.Partition.Path)
	span.SetSim(bill.Time())
	billSpans(span, bill)

	reply, err := l.routeShuffle(ctx, msg, res)
	if err != nil {
		return nil, err
	}
	reply.SimTime = bill.Time()
	reply.DevBytes = deviceBytes(bill)
	if msg.QueryID != "" {
		l.Events.EmitSim(events.TaskSite(msg.QueryID, msg.Task.Ordinal), events.ShuffleMap,
			msg.QueryID, msg.Task.Ordinal, bill.Time(),
			fmt.Sprintf("%s side=%s attempt=%d rows=%d", l.Name, msg.Side, msg.Attempt, reply.Rows))
	}
	return reply, nil
}

// routeShuffle hash-partitions the map output and ships it reducer by
// reducer: all owned partitions' frames, then the end-marker carrying the
// exact frame counts. The end-marker goes to every reducer — including
// those that received zero frames — so each can commit this ordinal.
func (l *LeafServer) routeShuffle(ctx context.Context, msg shuffleTaskMsg, res *exec.TaskResult) (shuffleTaskReply, error) {
	reply := shuffleTaskReply{TransferSim: map[int]time.Duration{}, PartBytes: map[int]int64{}}
	parts := msg.Partitions
	if parts <= 0 {
		parts = 1
	}
	rowParts := make([][][]types.Value, parts)
	groupParts := make([]*exec.Groups, parts)
	if msg.Side == shuffleSideGroup {
		if res.Groups != nil {
			reply.Rows = len(res.Groups.M)
			for k, g := range res.Groups.M {
				pi := exec.GroupShufflePartition(g.Keys, parts)
				if groupParts[pi] == nil {
					groupParts[pi] = exec.NewGroups(res.Groups.NumAggs)
				}
				groupParts[pi].M[k] = g
			}
		}
	} else {
		reply.Rows = len(res.Rows)
		for _, row := range res.Rows {
			pi := exec.ShufflePartition(row, msg.Keys, parts)
			rowParts[pi] = append(rowParts[pi], row)
		}
	}
	for ri, reducer := range msg.Reducers {
		frames := make(map[int]int)
		for pi := 0; pi < parts; pi++ {
			if pi%len(msg.Reducers) != ri {
				continue
			}
			partBill := sim.NewBill()
			sctx := storage.WithBill(ctx, partBill)
			send := func(fr shuffleFrameMsg, size int64) error {
				fr.Exchange, fr.QueryID, fr.Side = msg.Exchange, msg.QueryID, msg.Side
				fr.Ordinal, fr.Attempt, fr.Partition = msg.Task.Ordinal, msg.Attempt, pi
				fr.Size = size
				if _, err := l.Fabric.Call(sctx, l.Name, reducer, transport.Shuffle, fr, size); err != nil {
					return err
				}
				frames[pi]++
				reply.PartBytes[pi] += size
				return nil
			}
			if msg.Side == shuffleSideGroup {
				if g := groupParts[pi]; g != nil {
					chunk := exec.NewGroups(g.NumAggs)
					flush := func() error {
						if len(chunk.M) == 0 {
							return nil
						}
						size := (&exec.TaskResult{Groups: chunk}).EstimateBytes()
						if err := send(shuffleFrameMsg{Groups: chunk}, size); err != nil {
							return err
						}
						chunk = exec.NewGroups(g.NumAggs)
						return nil
					}
					for k, grp := range g.M {
						chunk.M[k] = grp
						if len(chunk.M) >= shuffleFrameRows {
							if err := flush(); err != nil {
								return reply, err
							}
						}
					}
					if err := flush(); err != nil {
						return reply, err
					}
				}
			} else {
				rows := rowParts[pi]
				for off := 0; off < len(rows); off += shuffleFrameRows {
					end := off + shuffleFrameRows
					if end > len(rows) {
						end = len(rows)
					}
					chunk := rows[off:end]
					size := (&exec.TaskResult{Rows: chunk}).EstimateBytes()
					if err := send(shuffleFrameMsg{Rows: chunk}, size); err != nil {
						return reply, err
					}
				}
			}
			reply.TransferSim[pi] += partBill.Time()
		}
		end := shuffleEndMsg{Exchange: msg.Exchange, QueryID: msg.QueryID, Side: msg.Side,
			Ordinal: msg.Task.Ordinal, Attempt: msg.Attempt, Frames: frames, Leaf: l.Name}
		if _, err := l.Fabric.Call(ctx, l.Name, reducer, transport.Shuffle, end, 64); err != nil {
			return reply, err
		}
	}
	return reply, nil
}

// ---------------------------------------------------------------------------
// Stem side: staging, commit, reduce.

// shuffleSideOrd identifies one map task within an exchange.
type shuffleSideOrd struct {
	side string
	ord  int
}

// shuffleStageKey identifies one attempt of a map task while it streams.
type shuffleStageKey struct {
	side    string
	ord     int
	attempt int
}

// stagedShuffle accumulates one attempt's frames, per partition.
type stagedShuffle struct {
	rows   map[int][][]types.Value
	groups map[int]*exec.Groups
	frames map[int]int
	bytes  map[int]int64
	leaf   string
}

func newStagedShuffle() *stagedShuffle {
	return &stagedShuffle{
		rows:   map[int][][]types.Value{},
		groups: map[int]*exec.Groups{},
		frames: map[int]int{},
		bytes:  map[int]int64{},
	}
}

// shuffleExchange is a reducer's state for one query's shuffle: in-flight
// attempts staging frames, and the committed attempt per map task.
type shuffleExchange struct {
	staged    map[shuffleStageKey]*stagedShuffle
	committed map[shuffleSideOrd]*stagedShuffle
}

func (s *StemServer) exchangeLocked(id string) *shuffleExchange {
	if s.shuffles == nil {
		s.shuffles = make(map[string]*shuffleExchange)
	}
	ex := s.shuffles[id]
	if ex == nil {
		ex = &shuffleExchange{
			staged:    map[shuffleStageKey]*stagedShuffle{},
			committed: map[shuffleSideOrd]*stagedShuffle{},
		}
		s.shuffles[id] = ex
	}
	return ex
}

func (s *StemServer) handleShuffleFrame(msg shuffleFrameMsg) (any, error) {
	s.shuffleMu.Lock()
	defer s.shuffleMu.Unlock()
	ex := s.exchangeLocked(msg.Exchange)
	if _, done := ex.committed[shuffleSideOrd{msg.Side, msg.Ordinal}]; done {
		// A duplicate or late attempt of an already-committed map task:
		// ignore it — any attempt partitions identical input identically.
		return shuffleAck{}, nil
	}
	key := shuffleStageKey{msg.Side, msg.Ordinal, msg.Attempt}
	st := ex.staged[key]
	if st == nil {
		st = newStagedShuffle()
		ex.staged[key] = st
	}
	if msg.Groups != nil {
		if g := st.groups[msg.Partition]; g == nil {
			st.groups[msg.Partition] = msg.Groups
		} else {
			g.Merge(msg.Groups)
		}
	} else {
		st.rows[msg.Partition] = append(st.rows[msg.Partition], msg.Rows...)
	}
	st.frames[msg.Partition]++
	st.bytes[msg.Partition] += msg.Size
	return shuffleAck{}, nil
}

func (s *StemServer) handleShuffleEnd(msg shuffleEndMsg) (any, error) {
	s.shuffleMu.Lock()
	defer s.shuffleMu.Unlock()
	ex := s.exchangeLocked(msg.Exchange)
	key := shuffleStageKey{msg.Side, msg.Ordinal, msg.Attempt}
	st := ex.staged[key]
	delete(ex.staged, key)
	so := shuffleSideOrd{msg.Side, msg.Ordinal}
	if _, done := ex.committed[so]; done {
		return shuffleAck{}, nil
	}
	if st == nil {
		st = newStagedShuffle()
	}
	// Verify the exact frame counts the leaf shipped here: a dropped or
	// duplicated frame (fault injection) voids the attempt so the master
	// retries it; the retry re-partitions identical input, so whichever
	// attempt commits first, the reduce sees the same rows.
	if len(st.frames) != len(msg.Frames) {
		return nil, fmt.Errorf("cluster: shuffle %s: %s#%d attempt %d: frames for %d partition(s) staged, %d expected",
			msg.Exchange, msg.Side, msg.Ordinal, msg.Attempt, len(st.frames), len(msg.Frames))
	}
	for pi, want := range msg.Frames {
		if st.frames[pi] != want {
			return nil, fmt.Errorf("cluster: shuffle %s: %s#%d attempt %d partition %d: %d frame(s) staged, %d expected",
				msg.Exchange, msg.Side, msg.Ordinal, msg.Attempt, pi, st.frames[pi], want)
		}
	}
	st.leaf = msg.Leaf
	ex.committed[so] = st
	s.Events.Emit(events.TaskSite(msg.QueryID, msg.Ordinal), events.ShuffleCommit, msg.QueryID, msg.Ordinal,
		fmt.Sprintf("side=%s attempt=%d from %s @ %s", msg.Side, msg.Attempt, msg.Leaf, s.Name))
	return shuffleAck{}, nil
}

func (s *StemServer) handleShuffleCleanup(msg shuffleCleanupMsg) (any, error) {
	s.shuffleMu.Lock()
	defer s.shuffleMu.Unlock()
	delete(s.shuffles, msg.Exchange)
	return shuffleAck{}, nil
}

// handleShuffleReduce joins/merges this reducer's owned partitions from the
// committed map outputs. Each partition gets a private bill (its grace-hash
// spill and read-back costs, plus a CPU charge proportional to staged input
// bytes) so the master can attribute per-partition reduce sim.
func (s *StemServer) handleShuffleReduce(ctx context.Context, msg shuffleReduceMsg) (any, error) {
	_, span := trace.StartSpan(ctx, "reduce/"+s.Name)
	defer span.Finish()
	sh := msg.Plan.Shuffle
	if sh == nil {
		return nil, fmt.Errorf("cluster: stem %s: reduce request without shuffle spec", s.Name)
	}

	// Snapshot the committed staging under the lock; committed entries are
	// never mutated after commit (late frames check committed first).
	s.shuffleMu.Lock()
	ex := s.exchangeLocked(msg.Exchange)
	committed := func(side string, ords []int) (map[int]*stagedShuffle, error) {
		out := make(map[int]*stagedShuffle, len(ords))
		for _, ord := range ords {
			st := ex.committed[shuffleSideOrd{side, ord}]
			if st == nil {
				return nil, fmt.Errorf("cluster: shuffle %s: %s#%d never committed at %s", msg.Exchange, side, ord, s.Name)
			}
			out[ord] = st
		}
		return out, nil
	}
	probe, err := committed(shuffleSideProbe, msg.ProbeOrdinals)
	var build, group map[int]*stagedShuffle
	if err == nil {
		build, err = committed(shuffleSideBuild, msg.BuildOrdinals)
	}
	if err == nil {
		group, err = committed(shuffleSideGroup, msg.GroupOrdinals)
	}
	s.shuffleMu.Unlock()
	if err != nil {
		return nil, err
	}

	var spill exec.SpillStore
	if s.Router != nil {
		spill = &routerSpillStore{ctx: ctx, router: s.Router, prefix: msg.SpillPrefix + "/" + s.Name}
	}
	parts := append([]int(nil), msg.Partitions...)
	sort.Ints(parts)

	var merged *exec.TaskResult
	partSim := make(map[int]time.Duration, len(parts))
	reduceBill := sim.NewBill()
	var spilled int64
	var total time.Duration
	for _, pi := range parts {
		partBill := sim.NewBill()
		site := fmt.Sprintf("shuffle/%s#p%d", msg.QueryID, pi)
		billing := exec.ShuffleBilling{Model: s.Model, Bill: partBill, OnSpill: func(n int64) {
			s.Events.Emit(site, events.ShuffleSpill, msg.QueryID, pi, fmt.Sprintf("%d bytes @ %s", n, s.Name))
		}}
		var res *exec.TaskResult
		var inBytes int64
		if sh.GroupShuffle {
			agg := exec.NewPartitionedAgg(len(msg.Plan.Aggs), sh.MemoryGrant, spill, billing)
			for _, ord := range msg.GroupOrdinals {
				st := group[ord]
				inBytes += st.bytes[pi]
				if g := st.groups[pi]; g != nil {
					if err := agg.Push(g); err != nil {
						return nil, err
					}
				}
			}
			groups, err := agg.Flush()
			if err != nil {
				return nil, err
			}
			res = &exec.TaskResult{Groups: groups}
			spilled += agg.SpilledBytes
		} else {
			j := exec.NewPartitionedHashJoin(msg.Plan, spill, billing)
			for _, ord := range msg.BuildOrdinals {
				st := build[ord]
				inBytes += st.bytes[pi]
				if err := j.PushBuild(st.rows[pi]); err != nil {
					return nil, err
				}
			}
			for _, ord := range msg.ProbeOrdinals {
				st := probe[ord]
				inBytes += st.bytes[pi]
				if err := j.PushProbe(st.rows[pi]); err != nil {
					return nil, err
				}
			}
			r, err := j.Flush()
			if err != nil {
				return nil, err
			}
			res = r
			spilled += j.SpilledBytes
		}
		if s.Model != nil {
			partBill.ChargeScan(s.Model, inBytes)
		}
		partSim[pi] = partBill.Time()
		total += partBill.Time()
		reduceBill.Add(partBill)
		if msg.QueryID != "" {
			rows := len(res.Rows)
			if res.Groups != nil {
				rows = len(res.Groups.M)
			}
			s.Events.EmitSim(site, events.ShuffleReduce, msg.QueryID, pi, partSim[pi],
				fmt.Sprintf("%s rows=%d", s.Name, rows))
		}
		merged = exec.MergeResults(msg.Plan, merged, res)
	}
	span.SetSim(total)
	s.shuffleMu.Lock()
	delete(s.shuffles, msg.Exchange)
	s.shuffleMu.Unlock()
	return shuffleReduceReply{Result: merged, PartSim: partSim, SpillBytes: spilled, DevBytes: deviceBytes(reduceBill)}, nil
}

// routerSpillStore backs grace-hash spills with the cluster's global
// storage router. Writes go through an unbilled context: the operator's
// ShuffleBilling charges the spill (write) and read-back explicitly, so
// billing here would double-count.
type routerSpillStore struct {
	ctx    context.Context
	router *storage.Router
	prefix string
	seq    int
}

func (s *routerSpillStore) Write(rows [][]types.Value) (string, int64, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rows); err != nil {
		return "", 0, fmt.Errorf("cluster: encode shuffle spill: %w", err)
	}
	s.seq++
	path := fmt.Sprintf("%s/chunk-%d", s.prefix, s.seq)
	if err := s.router.WriteFile(context.WithoutCancel(s.ctx), path, buf.Bytes()); err != nil {
		return "", 0, fmt.Errorf("cluster: shuffle spill %s: %w", path, err)
	}
	return path, int64(buf.Len()), nil
}

func (s *routerSpillStore) Read(handle string) ([][]types.Value, int64, error) {
	data, err := s.router.ReadFile(context.WithoutCancel(s.ctx), handle)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: shuffle spill read %s: %w", handle, err)
	}
	var rows [][]types.Value
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rows); err != nil {
		return nil, 0, fmt.Errorf("cluster: decode shuffle spill %s: %w", handle, err)
	}
	return rows, int64(len(data)), nil
}

// ---------------------------------------------------------------------------
// Master side: the shuffle driver.

type shuffleMapTask struct {
	side string
	task plan.TaskSpec
}

type shuffleMapDone struct {
	ordinal     int
	side        string
	leaf        string
	retries     int
	err         error
	simTime     time.Duration
	transferSim map[int]time.Duration
	partBytes   map[int]int64
	devBytes    map[string]int64
}

// runShuffle executes a repartitioned query: map tasks on the leaves
// (placed and retried like ordinary tasks), keyed frames to the reducers,
// then one reduce per reducer. SimTime models the three phases as
// sequential: busiest map leaf + slowest reducer's inbound transfer +
// slowest reducer's reduce work.
func (m *Master) runShuffle(ctx context.Context, p *plan.PhysicalPlan, opts QueryOptions, stats *QueryStats, qid string, prog *progressHandle) (*exec.TaskResult, error) {
	sh := p.Shuffle
	exchange := qid + "/shuffle"
	reducers := m.Manager.AliveWorkers(KindStem) // sorted by name
	if len(reducers) == 0 {
		reducers = []string{m.cfg.Name}
	}
	parts := sh.Partitions
	if parts <= 0 {
		parts = 1
	}

	// Map tasks, with globally unique ordinals across sides (build side
	// first). TaskSpec.Key() ignores the ordinal, so renumbering is safe.
	var maps []shuffleMapTask
	addSide := func(side string, mp *plan.PhysicalPlan) {
		for _, t := range mp.Tasks() {
			t.Ordinal = len(maps)
			if m.cfg.ScanWorkers != 0 {
				w := m.cfg.ScanWorkers
				if w < 0 {
					w = 1
				}
				t.Workers = w
			}
			maps = append(maps, shuffleMapTask{side: side, task: t})
		}
	}
	if sh.GroupShuffle {
		addSide(shuffleSideGroup, p)
	} else {
		addSide(shuffleSideBuild, sh.BuildPlan)
		addSide(shuffleSideProbe, sh.ProbePlan)
	}
	stats.Tasks = len(maps)
	prog.update(func(qp *QueryProgress) {
		qp.TasksPlanned = len(maps)
		qp.TasksDispatched = len(maps)
	})

	// Best-effort cleanup on every exit path: reducers that ran no reduce
	// (or a failed query's staging) must not leak exchange state.
	defer func() {
		for _, r := range reducers {
			if r == m.cfg.Name {
				m.localStem.handleShuffleCleanup(shuffleCleanupMsg{Exchange: exchange})
				continue
			}
			m.cfg.Fabric.Call(context.WithoutCancel(ctx), m.cfg.Name, r, transport.Control,
				shuffleCleanupMsg{Exchange: exchange}, 64)
		}
	}()

	timeout := opts.TaskTimeout
	if timeout == 0 {
		timeout = m.cfg.DefaultTaskTimeout
	}

	specs := make([]plan.TaskSpec, len(maps))
	for i, mt := range maps {
		specs[i] = mt.task
	}
	assign, err := m.Scheduler.PlanAll(specs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrShuffleFailed, err)
	}
	heldSlots := make(map[int]string, len(assign))
	for ord, leaf := range assign {
		heldSlots[ord] = leaf
	}
	defer func() {
		for _, leaf := range heldSlots {
			m.Scheduler.ReleaseTask(leaf)
		}
	}()

	// Phase 1: map. Dispatch every map task concurrently; each failure is
	// retried on another leaf with the shared backoff/jitter policy.
	mctx, mspan := trace.StartSpan(ctx, "shuffle-map")
	results := make(chan shuffleMapDone, len(maps))
	msgBase := shuffleTaskMsg{QueryID: qid, Exchange: exchange, Partitions: parts, Keys: sh.Keys, Reducers: reducers}
	for _, mt := range maps {
		// First-attempt spans are created here, serially, so the trace
		// lists tasks in ordinal order regardless of goroutine scheduling
		// (EXPLAIN ANALYZE output stays deterministic).
		leaf := assign[mt.task.Ordinal]
		span0 := trace.FromContext(mctx).Child(fmt.Sprintf("task#%d @ %s", mt.task.Ordinal, leaf))
		go m.runShuffleMap(mctx, mt, leaf, msgBase, timeout, results, span0)
	}
	mapBusy := map[string]time.Duration{}
	transferSim := make([]time.Duration, parts)
	transferBytes := make([]int64, parts)
	devBytes := map[string]int64{}
	var firstErr error
	for range maps {
		d := <-results
		if leaf, ok := heldSlots[d.ordinal]; ok {
			m.Scheduler.ReleaseTask(leaf)
			delete(heldSlots, d.ordinal)
		}
		stats.BackupTasks += d.retries
		prog.update(func(qp *QueryProgress) {
			qp.TasksRetried += d.retries
			if d.err != nil {
				qp.TasksFailed++
			} else {
				qp.TasksDone++
			}
		})
		if d.err != nil {
			stats.TasksFailed++
			stats.TaskErrors = append(stats.TaskErrors, TaskError{Ordinal: d.ordinal, Leaf: d.leaf, Err: d.err.Error()})
			if firstErr == nil {
				firstErr = fmt.Errorf("map %s#%d on %s: %w", d.side, d.ordinal, d.leaf, d.err)
			}
			continue
		}
		mapBusy[d.leaf] += d.simTime
		for pi, dur := range d.transferSim {
			transferSim[pi] += dur
		}
		for pi, n := range d.partBytes {
			transferBytes[pi] += n
		}
		for dev, n := range d.devBytes {
			devBytes[dev] += n
		}
	}
	var mapBusiest time.Duration
	for _, dur := range mapBusy {
		if dur > mapBusiest {
			mapBusiest = dur
		}
	}
	mspan.SetSim(mapBusiest)
	mspan.Finish()
	if firstErr != nil {
		return nil, fmt.Errorf("%w: %v", ErrShuffleFailed, firstErr)
	}

	// Phase 2: transfer accounting. The frames already moved (inside the
	// map phase wall-clock), but the simulated transfer is modeled as its
	// own pipeline stage: the slowest reducer's total inbound transfer.
	_, tspan := trace.StartSpan(ctx, "shuffle-transfer")
	reducerIn := make(map[string]time.Duration, len(reducers))
	for pi := 0; pi < parts; pi++ {
		r := reducers[pi%len(reducers)]
		reducerIn[r] += transferSim[pi]
		ps := tspan.Child(fmt.Sprintf("partition %d -> %s", pi, r))
		ps.SetSim(transferSim[pi])
		ps.Count("bytes", transferBytes[pi])
		ps.Finish()
	}
	var transferMax time.Duration
	for _, dur := range reducerIn {
		if dur > transferMax {
			transferMax = dur
		}
	}
	tspan.SetSim(transferMax)
	tspan.Finish()

	// Phase 3: reduce, one request per reducer, concurrently.
	ordinalsOf := func(side string) []int {
		var out []int
		for _, mt := range maps {
			if mt.side == side {
				out = append(out, mt.task.Ordinal)
			}
		}
		return out
	}
	byReducer := make(map[string][]int, len(reducers))
	for pi := 0; pi < parts; pi++ {
		r := reducers[pi%len(reducers)]
		byReducer[r] = append(byReducer[r], pi)
	}
	rctx, rspan := trace.StartSpan(ctx, "shuffle-reduce")
	var (
		mu        sync.Mutex
		merged    *exec.TaskResult
		redErr    error
		reduceMax time.Duration
		wg        sync.WaitGroup
	)
	for r, owned := range byReducer {
		wg.Add(1)
		go func(r string, owned []int) {
			defer wg.Done()
			msg := shuffleReduceMsg{
				Exchange: exchange, QueryID: qid, Plan: p, Partitions: owned,
				ProbeOrdinals: ordinalsOf(shuffleSideProbe),
				BuildOrdinals: ordinalsOf(shuffleSideBuild),
				GroupOrdinals: ordinalsOf(shuffleSideGroup),
				SpillPrefix:   "/hdfs/feisu-shuffle/" + qid,
			}
			reply, err := m.callShuffleReduce(rctx, r, msg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if redErr == nil {
					redErr = fmt.Errorf("reduce @ %s: %w", r, err)
				}
				return
			}
			var total time.Duration
			pis := make([]int, 0, len(reply.PartSim))
			for pi := range reply.PartSim {
				pis = append(pis, pi)
			}
			sort.Ints(pis)
			for _, pi := range pis {
				total += reply.PartSim[pi]
				ps := rspan.Child(fmt.Sprintf("partition %d @ %s", pi, r))
				ps.SetSim(reply.PartSim[pi])
				ps.Finish()
			}
			if total > reduceMax {
				reduceMax = total
			}
			stats.ShuffleSpillBytes += reply.SpillBytes
			for dev, n := range reply.DevBytes {
				devBytes[dev] += n
			}
			merged = exec.MergeResults(p, merged, reply.Result)
		}(r, owned)
	}
	wg.Wait()
	rspan.SetSim(reduceMax)
	rspan.Finish()
	if redErr != nil {
		return nil, fmt.Errorf("%w: %v", ErrShuffleFailed, redErr)
	}

	stats.ScanSimTime = mapBusiest
	stats.SimTime = mapBusiest + transferMax + reduceMax
	stats.BytesByDevice = devBytes
	if merged == nil {
		merged = &exec.TaskResult{}
	}
	return merged, nil
}

// runShuffleMap drives one map task to completion or permanent failure,
// re-placing it on another leaf between attempts.
func (m *Master) runShuffleMap(ctx context.Context, mt shuffleMapTask, leaf string, msgBase shuffleTaskMsg, timeout time.Duration, results chan<- shuffleMapDone, span0 *trace.Span) {
	d := shuffleMapDone{ordinal: mt.task.Ordinal, side: mt.side}
	msg := msgBase
	msg.Task = mt.task
	msg.Side = mt.side
	exclude := map[string]bool{}
	for attempt := 0; ; attempt++ {
		d.leaf = leaf
		msg.Attempt = attempt
		span := span0
		if attempt > 0 {
			span = nil
		}
		reply, err := m.callShuffleLeaf(ctx, leaf, msg, timeout, span)
		if err == nil {
			d.err = nil
			d.simTime = reply.SimTime
			d.transferSim = reply.TransferSim
			d.partBytes = reply.PartBytes
			d.devBytes = reply.DevBytes
			results <- d
			return
		}
		d.err = err
		if errors.Is(err, transport.ErrUnknownNode) {
			m.Manager.MarkSuspect(leaf)
		}
		if attempt >= m.cfg.MaxTaskRetries || ctx.Err() != nil {
			results <- d
			return
		}
		if m.cfg.RetryBackoff > 0 && !sleepCtx(ctx, retryDelay(m.cfg.RetryBackoff, mt.task.Key(), attempt)) {
			results <- d
			return
		}
		exclude[leaf] = true
		m.excludeUnhealthy(exclude)
		next, perr := m.Scheduler.Place(mt.task, exclude)
		if perr != nil {
			results <- d
			return
		}
		d.retries++
		m.Retries.Inc()
		m.cfg.Events.Emit(events.TaskSite(msg.QueryID, mt.task.Ordinal), events.ShuffleRetry,
			msg.QueryID, mt.task.Ordinal,
			fmt.Sprintf("side=%s attempt=%d %s -> %s: %v", mt.side, attempt+1, leaf, next, err))
		leaf = next
	}
}

// callShuffleLeaf runs one map attempt. span carries a pre-created task
// span (first attempts, for deterministic trace ordering); nil creates
// one here (retries).
func (m *Master) callShuffleLeaf(ctx context.Context, leaf string, msg shuffleTaskMsg, timeout time.Duration, span *trace.Span) (shuffleTaskReply, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if span == nil {
		ctx, span = trace.StartSpan(ctx, fmt.Sprintf("task#%d @ %s", msg.Task.Ordinal, leaf))
	} else {
		ctx = trace.NewContext(ctx, span)
	}
	defer span.Finish()
	raw, err := m.cfg.Fabric.Call(ctx, m.cfg.Name, leaf, transport.Control, msg, 256)
	if err != nil {
		return shuffleTaskReply{}, err
	}
	reply, ok := raw.(shuffleTaskReply)
	if !ok {
		return shuffleTaskReply{}, fmt.Errorf("cluster: unexpected shuffle map reply %T from %s", raw, leaf)
	}
	span.SetSim(reply.SimTime)
	return reply, nil
}

func (m *Master) callShuffleReduce(ctx context.Context, reducer string, msg shuffleReduceMsg) (shuffleReduceReply, error) {
	var (
		raw any
		err error
	)
	if reducer == m.cfg.Name {
		raw, err = m.localStem.handleShuffleReduce(ctx, msg)
	} else {
		raw, err = m.cfg.Fabric.Call(ctx, m.cfg.Name, reducer, transport.Control, msg, 512)
	}
	if err != nil {
		return shuffleReduceReply{}, err
	}
	reply, ok := raw.(shuffleReduceReply)
	if !ok {
		return shuffleReduceReply{}, fmt.Errorf("cluster: unexpected shuffle reduce reply %T from %s", raw, reducer)
	}
	return reply, nil
}
