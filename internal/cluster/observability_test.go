package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
)

// TestTraceSpans asserts the tentpole wiring: a traced query produces a
// span tree with master, stem and leaf spans carrying non-zero simulated
// time, and the leaf scan span reports its row counters.
func TestTraceSpans(t *testing.T) {
	tc := newTestCluster(t, 4, 2, 4, nil)
	_, stats := tc.query("SELECT COUNT(*) FROM logs WHERE v > 2", QueryOptions{Trace: true})

	root := stats.Trace
	if root == nil {
		t.Fatal("QueryStats.Trace is nil with Trace option set")
	}
	if root.Name() != "master/query" {
		t.Fatalf("root span = %q", root.Name())
	}
	if root.Sim() <= 0 {
		t.Error("master span has zero simulated time")
	}
	stem := root.Find("stem/")
	if stem == nil {
		t.Fatal("no stem span in the trace")
	}
	if stem.Sim() <= 0 {
		t.Error("stem span has zero simulated time")
	}
	leaves := root.FindAll("leaf/")
	if len(leaves) != 4 {
		t.Fatalf("got %d leaf spans, want 4 (one per partition)", len(leaves))
	}
	for _, l := range leaves {
		if l.Sim() <= 0 {
			t.Errorf("leaf span %s has zero simulated time", l.Attr("partition"))
		}
		scan := l.Find("scan")
		if scan == nil {
			t.Fatalf("leaf span %s has no scan child", l.Attr("partition"))
		}
		if scan.CountValue("rows.scanned") != testRowsPerPartition {
			t.Errorf("scan rows.scanned = %d, want %d",
				scan.CountValue("rows.scanned"), testRowsPerPartition)
		}
		if l.Find("read:") == nil {
			t.Errorf("leaf span %s has no device read breakdown", l.Attr("partition"))
		}
	}
	if root.Find("master/execute") == nil || root.Find("master/finalize") == nil {
		t.Error("master stage spans missing")
	}
}

// TestUntracedQueryHasNoTrace ensures tracing is strictly opt-in.
func TestUntracedQueryHasNoTrace(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 2, nil)
	_, stats := tc.query("SELECT COUNT(*) FROM logs", QueryOptions{})
	if stats.Trace != nil {
		t.Fatal("untraced query carries a trace")
	}
}

// TestExplainStatement: EXPLAIN describes the plan without executing.
func TestExplainStatement(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 2, nil)
	res, stats := tc.query("EXPLAIN SELECT COUNT(*) FROM logs WHERE v > 2", QueryOptions{})
	if stats.Tasks != 0 {
		t.Fatalf("EXPLAIN executed %d tasks", stats.Tasks)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("columns = %v", res.Columns)
	}
	text := flattenRows(res)
	for _, want := range []string{"fact table: logs", "v > 2 [indexable]"} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, text)
		}
	}
}

// TestExplainAnalyze: EXPLAIN ANALYZE executes and renders the span tree.
func TestExplainAnalyze(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 2, nil)
	res, stats := tc.query("EXPLAIN ANALYZE SELECT COUNT(*) FROM logs WHERE v > 2", QueryOptions{})
	if stats.Tasks == 0 {
		t.Fatal("EXPLAIN ANALYZE did not execute the query")
	}
	if stats.Trace == nil {
		t.Fatal("EXPLAIN ANALYZE did not record a trace")
	}
	text := flattenRows(res)
	for _, want := range []string{"execution trace:", "master/query", "stem/", "leaf/", "rows.scanned"} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, text)
		}
	}
}

// TestExplainSharesFingerprint: the EXPLAIN/ANALYZE prefix must not change
// the statement's canonical form, so analyzed queries share task-reuse
// fingerprints with their plain counterparts.
func TestExplainSharesFingerprint(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 2, nil)
	res, _ := tc.query("EXPLAIN SELECT COUNT(*) FROM logs WHERE v > 2", QueryOptions{})
	if !strings.Contains(flattenRows(res), "query: SELECT COUNT(*) FROM logs WHERE (logs.v > 2)") {
		t.Errorf("fingerprint should not carry the EXPLAIN prefix:\n%s", flattenRows(res))
	}
}

func flattenRows(res *exec.Result) string {
	var sb strings.Builder
	for _, row := range res.Rows {
		sb.WriteString(row[0].S)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestChargeRemoteReadIndexOnlyNotBilled is the billing bugfix's contract:
// a task scheduled off its data holder is billed network transfer only for
// bytes read from the holder's store — an in-memory SmartIndex answer (or
// a local SSD cache hit) moves nothing.
func TestChargeRemoteReadIndexOnlyNotBilled(t *testing.T) {
	model := sim.DefaultCostModel()
	topo := transport.NewTopology()
	fabric := transport.NewFabric(topo, transport.Options{Model: model})
	hdfs := storage.NewHDFS("hdfs", model)
	router := storage.NewRouter(storage.NewMemFS("", model))
	router.Register(hdfs)
	topo.Place("holder", "r0", "dc1")
	topo.Place("far", "r1", "dc1")
	hdfs.AddNode("holder", "r0")
	ctx := context.Background()
	if err := router.WriteFile(ctx, "/hdfs/x/p0", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	leaf := &LeafServer{Name: "far", Fabric: fabric, Router: router, Model: model}

	// Index-hit-only task: every byte came from this leaf's own memory.
	bill := sim.NewBill()
	bill.ChargeRead(model, sim.DeviceMemory, 4096)
	leaf.chargeRemoteRead(ctx, bill, "/hdfs/x/p0")
	if n := bill.Bytes(sim.DeviceNetwork); n != 0 {
		t.Fatalf("in-memory index bytes billed as network transfer: %d bytes", n)
	}

	// SSD *cache* hits on an HDD-resident partition stay local too.
	bill.ChargeRead(model, sim.DeviceSSD, 2048)
	leaf.chargeRemoteRead(ctx, bill, "/hdfs/x/p0")
	if n := bill.Bytes(sim.DeviceNetwork); n != 0 {
		t.Fatalf("SSD cache bytes billed as network transfer: %d bytes", n)
	}

	// Bytes read from the holder's HDD store do cross the network.
	bill.ChargeRead(model, sim.DeviceHDD, 1000)
	leaf.chargeRemoteRead(ctx, bill, "/hdfs/x/p0")
	if n := bill.Bytes(sim.DeviceNetwork); n != 1000 {
		t.Fatalf("network bytes = %d, want 1000 (the HDD bytes)", n)
	}

	// A holder reads locally and is never billed.
	local := &LeafServer{Name: "holder", Fabric: fabric, Router: router, Model: model}
	bill2 := sim.NewBill()
	bill2.ChargeRead(model, sim.DeviceHDD, 1000)
	local.chargeRemoteRead(ctx, bill2, "/hdfs/x/p0")
	if n := bill2.Bytes(sim.DeviceNetwork); n != 0 {
		t.Fatalf("local read billed as network transfer: %d bytes", n)
	}
}

// TestStartStopRace exercises the lifecycle guard: concurrent Start/Stop
// from multiple goroutines, including double Stop, must be safe (run with
// -race) and must not panic on a closed channel.
func TestStartStopRace(t *testing.T) {
	tc := newTestCluster(t, 1, 1, 1, nil)
	leaf, stem := tc.leaves[0], tc.stems[0]
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				leaf.Start("master", time.Hour)
				stem.Start("master", time.Hour)
				leaf.Stop()
				stem.Stop()
				leaf.Stop() // double Stop must be a no-op
			}
		}()
	}
	wg.Wait()
	// A final Start/Stop cycle still works after the churn.
	leaf.Start("master", time.Hour)
	leaf.Stop()
	stem.Stop()
}

// TestLivenessWindowBoundary pins the inclusive boundary: a worker whose
// last heartbeat is exactly LivenessWindow old is still alive; one
// nanosecond older is dead.
func TestLivenessWindowBoundary(t *testing.T) {
	m := NewClusterManager(time.Minute)
	base := time.Now()
	now := base
	m.Now = func() time.Time { return now }
	m.Heartbeat("leaf0", KindLeaf, 0)

	now = base.Add(time.Minute)
	if !m.Alive("leaf0") {
		t.Fatal("worker at exactly LivenessWindow must still be alive")
	}
	if got := m.AliveWorkers(KindLeaf); len(got) != 1 {
		t.Fatalf("AliveWorkers at boundary = %v", got)
	}
	now = base.Add(time.Minute + time.Nanosecond)
	if m.Alive("leaf0") {
		t.Fatal("worker past LivenessWindow must be dead")
	}
	if got := m.AliveWorkers(KindLeaf); len(got) != 0 {
		t.Fatalf("AliveWorkers past boundary = %v", got)
	}
}

// TestConcurrentTracedQueriesOneLeaf drives concurrent traced queries
// through a single leaf whose reader is wrapped with the SSD cache, so the
// SmartIndex and cache singleflight paths race under -race.
func TestConcurrentTracedQueriesOneLeaf(t *testing.T) {
	tc := newTestCluster(t, 1, 0, 2, nil)
	tc.leaves[0].Reader = cache.NewReader(exec.NewStoreReader(tc.router), cache.Options{
		CapacityBytes: 1 << 20,
		Prefixes:      []string{"/hdfs/"},
		Model:         sim.DefaultCostModel(),
	})
	queries := []string{
		"SELECT COUNT(*) FROM logs WHERE v > 2",
		"SELECT COUNT(*) FROM logs WHERE v = 1",
		"SELECT SUM(v) FROM logs WHERE v > 4",
		"SELECT COUNT(*) FROM logs WHERE v > 2", // identical: exercises task reuse
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, stats, err := tc.master.Submit(context.Background(), queries[i%len(queries)], QueryOptions{Trace: true})
			if err != nil {
				errs <- err
				return
			}
			if stats.Trace == nil {
				errs <- fmt.Errorf("query %d: no trace recorded", i)
				return
			}
			// A query whose tasks were all reused from a concurrent
			// identical query executed nothing itself, so its trace
			// legitimately has no leaf spans.
			if stats.ReusedTasks < stats.Tasks && stats.Trace.Find("leaf/") == nil {
				errs <- fmt.Errorf("query %d: trace missing leaf span (%d/%d tasks reused)",
					i, stats.ReusedTasks, stats.Tasks)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent traced query failed: %v", err)
	}
}
