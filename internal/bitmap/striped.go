package bitmap

import (
	"fmt"
	"math/bits"
)

// Cache-line-striped bitmap layout for the SmartIndex hot tier.
//
// A Striped bitmap groups the word stream into stripes of 8 words — one
// 64-byte cache line each — and classifies every stripe as all-zeros,
// all-ones or mixed. Only mixed stripes occupy backing storage, packed
// contiguously in stripe order in a single arena slice, so combining a hot
// bitmap into a selection walks sequential cache lines and skips uniform
// lines without touching memory at all ("Fast Query Processing by
// Distributing an Index over CPU Caches": keep the hot index resident in
// cache and access it without pointer chasing).
//
// Predicate-result bitmaps are typically heavily skewed (a hot predicate
// selects almost none or almost all rows of a block), so most stripes are
// uniform: the striped form usually costs a few tag bytes per cache line of
// the dense form while AND/NOT over it degenerates to a handful of word
// writes. The layout is immutable after construction — the SmartIndex hands
// the same *Striped to concurrent readers.
const (
	stripeWords = 8 // 8 × 8-byte words = one 64-byte cache line
	stripeBits  = stripeWords * wordBits
)

// Stripe tags.
const (
	stripeZeros uint8 = iota
	stripeOnes
	stripeMixed
)

// Striped is the immutable cache-line-striped form of a Bitmap.
type Striped struct {
	n      int      // number of valid bits
	nWords int      // words of the dense form
	tags   []uint8  // one tag per stripe
	offs   []int32  // per stripe: mixed-arena stripe ordinal, or -1 for uniform stripes
	words  []uint64 // mixed stripes only, stripeWords words each, stripe order
}

// Stripe converts a dense bitmap into the striped layout. The tail stripe
// (which may cover fewer than stripeWords valid words) is classified
// all-zeros or mixed, never all-ones, so Word can synthesize uniform
// stripes without consulting the tail mask.
func Stripe(b *Bitmap) *Striped {
	nWords := len(b.words)
	nStripes := (nWords + stripeWords - 1) / stripeWords
	s := &Striped{
		n:      b.n,
		nWords: nWords,
		tags:   make([]uint8, nStripes),
		offs:   make([]int32, nStripes),
	}
	mixed := 0
	for si := 0; si < nStripes; si++ {
		lo, hi := si*stripeWords, (si+1)*stripeWords
		full := hi <= nWords
		if hi > nWords {
			hi = nWords
		}
		zeros, ones := true, full
		for wi := lo; wi < hi; wi++ {
			w := b.words[wi]
			if w != 0 {
				zeros = false
			}
			if w != ^uint64(0) {
				ones = false
			}
			if !zeros && !ones {
				break
			}
		}
		switch {
		case zeros:
			s.tags[si] = stripeZeros
			s.offs[si] = -1
		case ones:
			s.tags[si] = stripeOnes
			s.offs[si] = -1
		default:
			s.tags[si] = stripeMixed
			s.offs[si] = int32(mixed)
			mixed++
		}
	}
	s.words = make([]uint64, mixed*stripeWords)
	for si := 0; si < nStripes; si++ {
		if s.tags[si] != stripeMixed {
			continue
		}
		lo, hi := si*stripeWords, (si+1)*stripeWords
		if hi > nWords {
			hi = nWords // tail stripe: trailing arena words stay zero
		}
		copy(s.words[int(s.offs[si])*stripeWords:], b.words[lo:hi])
	}
	return s
}

// storagePos maps a logical word index to its arena position, ok=false for
// words inside uniform (unstored) stripes. The mapping is injective over
// stored words — the stripe-index guard test asserts it.
func (s *Striped) storagePos(wi int) (int, bool) {
	si := wi / stripeWords
	if s.tags[si] != stripeMixed {
		return 0, false
	}
	return int(s.offs[si])*stripeWords + wi%stripeWords, true
}

// Len returns the number of valid bits.
func (s *Striped) Len() int { return s.n }

// Word returns the dense form's word wi.
func (s *Striped) Word(wi int) uint64 {
	if wi < 0 || wi >= s.nWords {
		panic(fmt.Sprintf("bitmap: striped word %d out of range [0,%d)", wi, s.nWords))
	}
	switch s.tags[wi/stripeWords] {
	case stripeZeros:
		return 0
	case stripeOnes:
		return ^uint64(0) // never the (masked) tail word: Stripe tags the tail zeros/mixed
	default:
		return s.words[int(s.offs[wi/stripeWords])*stripeWords+wi%stripeWords]
	}
}

// checkDst verifies the destination shape once per bulk op.
func (s *Striped) checkDst(dst *Bitmap) {
	if dst.n != s.n {
		panic(fmt.Sprintf("bitmap: striped length mismatch %d vs %d", s.n, dst.n))
	}
}

// AndInto sets dst = dst AND s word-at-a-time: all-ones stripes are skipped
// without a memory touch, all-zero stripes clear the destination line, and
// only mixed stripes read the arena.
func (s *Striped) AndInto(dst *Bitmap) {
	s.checkDst(dst)
	for si, tag := range s.tags {
		lo, hi := si*stripeWords, (si+1)*stripeWords
		if hi > s.nWords {
			hi = s.nWords
		}
		switch tag {
		case stripeOnes: // dst AND 1 = dst
		case stripeZeros:
			for wi := lo; wi < hi; wi++ {
				dst.words[wi] = 0
			}
		default:
			arena := s.words[int(s.offs[si])*stripeWords:]
			for wi := lo; wi < hi; wi++ {
				dst.words[wi] &= arena[wi-lo]
			}
		}
	}
}

// AndNotInto sets dst = dst AND NOT s word-at-a-time (the Fig. 7 bit-NOT
// composed with the running selection in one pass).
func (s *Striped) AndNotInto(dst *Bitmap) {
	s.checkDst(dst)
	for si, tag := range s.tags {
		lo, hi := si*stripeWords, (si+1)*stripeWords
		if hi > s.nWords {
			hi = s.nWords
		}
		switch tag {
		case stripeZeros: // dst AND NOT 0 = dst
		case stripeOnes:
			for wi := lo; wi < hi; wi++ {
				dst.words[wi] = 0
			}
		default:
			arena := s.words[int(s.offs[si])*stripeWords:]
			for wi := lo; wi < hi; wi++ {
				dst.words[wi] &^= arena[wi-lo]
			}
		}
	}
}

// OrInto sets dst = dst OR s word-at-a-time. All-ones stripes never cover
// the tail (Stripe classifies it zeros/mixed), so whole-line fills cannot
// set bits past Len.
func (s *Striped) OrInto(dst *Bitmap) {
	s.checkDst(dst)
	for si, tag := range s.tags {
		lo, hi := si*stripeWords, (si+1)*stripeWords
		if hi > s.nWords {
			hi = s.nWords
		}
		switch tag {
		case stripeZeros: // dst OR 0 = dst
		case stripeOnes:
			for wi := lo; wi < hi; wi++ {
				dst.words[wi] = ^uint64(0)
			}
		default:
			arena := s.words[int(s.offs[si])*stripeWords:]
			for wi := lo; wi < hi; wi++ {
				dst.words[wi] |= arena[wi-lo]
			}
		}
	}
}

// ToBitmap materializes the dense form.
func (s *Striped) ToBitmap() *Bitmap {
	b := New(s.n)
	for si, tag := range s.tags {
		lo, hi := si*stripeWords, (si+1)*stripeWords
		if hi > s.nWords {
			hi = s.nWords
		}
		switch tag {
		case stripeZeros:
		case stripeOnes:
			for wi := lo; wi < hi; wi++ {
				b.words[wi] = ^uint64(0)
			}
		default:
			arena := s.words[int(s.offs[si])*stripeWords:]
			for wi := lo; wi < hi; wi++ {
				b.words[wi] = arena[wi-lo]
			}
		}
	}
	b.clearTail()
	return b
}

// Count returns the number of set bits without materializing.
func (s *Striped) Count() int {
	c := 0
	for si, tag := range s.tags {
		lo, hi := si*stripeWords, (si+1)*stripeWords
		if hi > s.nWords {
			hi = s.nWords
		}
		switch tag {
		case stripeZeros:
		case stripeOnes:
			c += (hi - lo) * wordBits
		default:
			arena := s.words[int(s.offs[si])*stripeWords:]
			for wi := lo; wi < hi; wi++ {
				c += bits.OnesCount64(arena[wi-lo])
			}
		}
	}
	return c
}

// SizeBytes returns the in-memory footprint: the mixed-stripe arena plus
// one tag byte and one offset per stripe.
func (s *Striped) SizeBytes() int {
	return 8*len(s.words) + len(s.tags) + 4*len(s.offs) + 48
}
