// Package bitmap implements the 0-1 vectors that back Feisu's SmartIndex
// (paper §IV-C): each index entry stores the evaluation result of one query
// predicate over one data block as a bitmap, and query execution composes
// cached bitmaps with bit-AND / bit-OR / bit-NOT instead of re-scanning the
// block (paper Fig. 7).
//
// Two representations are provided: a dense word-backed Bitmap for in-flight
// computation, and an RLE-compressed form (Compress/Decompress) used when an
// entry is parked in the index cache, since "Feisu can compress the index to
// improve memory efficiency".
package bitmap

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitmap is a fixed-length dense bitset.
type Bitmap struct {
	n     int // number of valid bits
	words []uint64
}

// New returns an all-zero bitmap of n bits.
func New(n int) *Bitmap {
	if n < 0 {
		panic("bitmap: negative length")
	}
	return &Bitmap{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewFull returns an all-ones bitmap of n bits.
func NewFull(n int) *Bitmap {
	b := New(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.clearTail()
	return b
}

// FromBools builds a bitmap from a bool slice.
func FromBools(vals []bool) *Bitmap {
	b := New(len(vals))
	for i, v := range vals {
		if v {
			b.Set(i)
		}
	}
	return b
}

// clearTail zeroes the unused bits of the last word so Count and equality
// stay exact after whole-word operations such as Not.
func (b *Bitmap) clearTail() {
	if rem := b.n % wordBits; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (uint64(1) << uint(rem)) - 1
	}
}

// Len returns the number of bits.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i to 1.
func (b *Bitmap) Set(i int) {
	b.checkIndex(i)
	b.words[i/wordBits] |= uint64(1) << uint(i%wordBits)
}

// Clear sets bit i to 0.
func (b *Bitmap) Clear(i int) {
	b.checkIndex(i)
	b.words[i/wordBits] &^= uint64(1) << uint(i%wordBits)
}

// SetWord overwrites the 64-bit word holding bits [wi*64, wi*64+64) — the
// bulk store used by the vectorized predicate kernels, which accumulate
// match bits in a register and flush whole words. Bits beyond Len are
// masked off.
func (b *Bitmap) SetWord(wi int, w uint64) {
	if wi < 0 || wi >= len(b.words) {
		panic(fmt.Sprintf("bitmap: word %d out of range [0,%d)", wi, len(b.words)))
	}
	b.words[wi] = w
	if wi == len(b.words)-1 {
		b.clearTail()
	}
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	b.checkIndex(i)
	return b.words[i/wordBits]&(uint64(1)<<uint(i%wordBits)) != 0
}

func (b *Bitmap) checkIndex(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitmap: index %d out of range [0,%d)", i, b.n))
	}
}

// Count returns the number of set bits (population count).
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{n: b.n, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// And sets b = b AND other in place. Lengths must match.
func (b *Bitmap) And(other *Bitmap) {
	b.checkLen(other)
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// Or sets b = b OR other in place. Lengths must match.
func (b *Bitmap) Or(other *Bitmap) {
	b.checkLen(other)
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// AndNot sets b = b AND NOT other in place. Lengths must match.
func (b *Bitmap) AndNot(other *Bitmap) {
	b.checkLen(other)
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
}

// Not inverts all bits in place. This is the bit-NOT of paper Fig. 7, used
// to derive an index for !(pred) from a cached index for pred.
func (b *Bitmap) Not() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.clearTail()
}

// Xor sets b = b XOR other in place. Lengths must match.
func (b *Bitmap) Xor(other *Bitmap) {
	b.checkLen(other)
	for i := range b.words {
		b.words[i] ^= other.words[i]
	}
}

func (b *Bitmap) checkLen(other *Bitmap) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitmap: length mismatch %d vs %d", b.n, other.n))
	}
}

// Any reports whether at least one bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// All reports whether every bit is set.
func (b *Bitmap) All() bool { return b.Count() == b.n }

// Equal reports whether two bitmaps have identical length and contents.
func (b *Bitmap) Equal(other *Bitmap) bool {
	if b.n != other.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// ForEachSet calls fn with the index of every set bit, ascending.
func (b *Bitmap) ForEachSet(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(wi*wordBits + tz)
			w &= w - 1
		}
	}
}

// Selected returns the indices of all set bits.
func (b *Bitmap) Selected() []int {
	out := make([]int, 0, b.Count())
	b.ForEachSet(func(i int) { out = append(out, i) })
	return out
}

// SizeBytes returns the in-memory footprint of the dense representation,
// used by the SmartIndex memory accountant.
func (b *Bitmap) SizeBytes() int { return 8*len(b.words) + 16 }

// Marshal serializes the bitmap to a portable byte form:
// [uvarint n][words little-endian].
func (b *Bitmap) Marshal() []byte {
	buf := make([]byte, binary.MaxVarintLen64+8*len(b.words))
	off := binary.PutUvarint(buf, uint64(b.n))
	for _, w := range b.words {
		binary.LittleEndian.PutUint64(buf[off:], w)
		off += 8
	}
	return buf[:off]
}

// Unmarshal parses the form produced by Marshal.
func Unmarshal(data []byte) (*Bitmap, error) {
	n, off := binary.Uvarint(data)
	if off <= 0 {
		return nil, fmt.Errorf("bitmap: bad header")
	}
	b := New(int(n))
	if len(data)-off != 8*len(b.words) {
		return nil, fmt.Errorf("bitmap: want %d payload bytes, have %d", 8*len(b.words), len(data)-off)
	}
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(data[off:])
		off += 8
	}
	b.clearTail()
	return b, nil
}
