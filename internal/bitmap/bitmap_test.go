package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndBasicOps(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Count() != 0 || b.Any() {
		t.Error("new bitmap should be empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 {
		t.Errorf("Count = %d, want 3", b.Count())
	}
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Error("Get wrong")
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Error("Clear failed")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestIndexOutOfRangePanics(t *testing.T) {
	b := New(10)
	for _, i := range []int{-1, 10, 100} {
		func(i int) {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) should panic", i)
				}
			}()
			b.Get(i)
		}(i)
	}
}

func TestNewFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
		b := NewFull(n)
		if b.Count() != n {
			t.Errorf("NewFull(%d).Count = %d", n, b.Count())
		}
		if n > 0 && !b.All() {
			t.Errorf("NewFull(%d) not All", n)
		}
	}
}

func TestFromBools(t *testing.T) {
	vals := []bool{true, false, true, true, false}
	b := FromBools(vals)
	for i, v := range vals {
		if b.Get(i) != v {
			t.Errorf("bit %d = %v, want %v", i, b.Get(i), v)
		}
	}
}

func TestAndOrNotXorAndNot(t *testing.T) {
	a := FromBools([]bool{true, true, false, false, true})
	b := FromBools([]bool{true, false, true, false, true})

	x := a.Clone()
	x.And(b)
	if got := x.Selected(); len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Errorf("And = %v", got)
	}

	x = a.Clone()
	x.Or(b)
	if x.Count() != 4 {
		t.Errorf("Or count = %d", x.Count())
	}

	x = a.Clone()
	x.Not()
	if got := x.Selected(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("Not = %v", got)
	}

	x = a.Clone()
	x.Xor(b)
	if got := x.Selected(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Xor = %v", got)
	}

	x = a.Clone()
	x.AndNot(b)
	if got := x.Selected(); len(got) != 1 || got[0] != 1 {
		t.Errorf("AndNot = %v", got)
	}
}

func TestNotClearsTail(t *testing.T) {
	// Not on a 65-bit bitmap must not set bits beyond 65.
	b := New(65)
	b.Not()
	if b.Count() != 65 {
		t.Errorf("Not count = %d, want 65", b.Count())
	}
	b.Not()
	if b.Count() != 0 {
		t.Errorf("double Not count = %d, want 0", b.Count())
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("And with mismatched length should panic")
		}
	}()
	New(10).And(New(11))
}

func TestEqual(t *testing.T) {
	a := FromBools([]bool{true, false, true})
	b := FromBools([]bool{true, false, true})
	c := FromBools([]bool{true, true, true})
	if !a.Equal(b) {
		t.Error("equal bitmaps not Equal")
	}
	if a.Equal(c) {
		t.Error("different bitmaps Equal")
	}
	if a.Equal(New(4)) {
		t.Error("different lengths Equal")
	}
}

func TestForEachSetOrder(t *testing.T) {
	b := New(200)
	want := []int{0, 63, 64, 65, 127, 128, 199}
	for _, i := range want {
		b.Set(i)
	}
	got := b.Selected()
	if len(got) != len(want) {
		t.Fatalf("Selected = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Selected[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 64, 65, 1000} {
		b := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		got, err := Unmarshal(b.Marshal())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !got.Equal(b) {
			t.Errorf("n=%d: round trip mismatch", n)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty input should fail")
	}
	b := New(128)
	data := b.Marshal()
	if _, err := Unmarshal(data[:len(data)-1]); err == nil {
		t.Error("truncated input should fail")
	}
}

func TestCompressRoundTripDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 63, 64, 65, 512, 4096} {
		b := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		c := Compress(b)
		got, err := c.Decompress()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !got.Equal(b) {
			t.Errorf("n=%d: compress round trip mismatch", n)
		}
	}
}

func TestCompressSkewedSavesSpace(t *testing.T) {
	// A sparse selection (the common SmartIndex case) must compress well.
	b := New(1 << 16)
	for i := 0; i < 10; i++ {
		b.Set(i * 1000)
	}
	c := Compress(b)
	if c.SizeBytes() >= b.SizeBytes()/4 {
		t.Errorf("sparse compressed size %d not < dense/4 (%d)", c.SizeBytes(), b.SizeBytes()/4)
	}
	got, err := c.Decompress()
	if err != nil || !got.Equal(b) {
		t.Fatalf("round trip: %v", err)
	}

	full := NewFull(1 << 16)
	cf := Compress(full)
	if cf.SizeBytes() >= 64 {
		t.Errorf("all-ones compressed size %d too large", cf.SizeBytes())
	}
}

func TestDecompressCorrupt(t *testing.T) {
	c := &Compressed{n: 128, data: []byte{0xff}} // bad varint / overflow
	if _, err := c.Decompress(); err == nil {
		t.Error("corrupt run should fail")
	}
	// Run overflowing word count.
	c2 := &Compressed{n: 64, data: []byte{(10 << 2) | runZeros}}
	if _, err := c2.Decompress(); err == nil {
		t.Error("overflowing run should fail")
	}
	// Truncated coverage.
	c3 := &Compressed{n: 128, data: []byte{(1 << 2) | runZeros}}
	if _, err := c3.Decompress(); err == nil {
		t.Error("short coverage should fail")
	}
	// Truncated literal payload.
	c4 := &Compressed{n: 64, data: []byte{(1 << 2) | runLiteral, 1, 2}}
	if _, err := c4.Decompress(); err == nil {
		t.Error("truncated literal should fail")
	}
}

func TestCompressRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)
		rng := rand.New(rand.NewSource(seed))
		b := New(n)
		for i := 0; i < n; i++ {
			switch rng.Intn(10) {
			case 0:
				b.Set(i)
			}
		}
		got, err := Compress(b).Decompress()
		return err == nil && got.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeMorganProperty(t *testing.T) {
	// NOT(a AND b) == NOT(a) OR NOT(b) — the identity the SmartIndex
	// rewriter relies on when deriving indices from negations.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 300
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		lhs := a.Clone()
		lhs.And(b)
		lhs.Not()
		na, nb := a.Clone(), b.Clone()
		na.Not()
		nb.Not()
		na.Or(nb)
		return lhs.Equal(na)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDoubleNegationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New(777)
		for i := 0; i < 777; i++ {
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		c := b.Clone()
		c.Not()
		c.Not()
		return c.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
