package bitmap

import (
	"encoding/binary"
	"fmt"
)

// Compressed is an RLE-compressed bitmap, the parked form used by the
// SmartIndex cache. Predicate-result bitmaps are typically highly skewed
// (most predicates select few rows or most rows), so run-length encoding of
// the word stream compresses well while staying cheap to expand.
//
// Encoding: a sequence of runs. Each run is either
//   - a fill run: uvarint(count<<2 | 0b01) for all-zero words, or
//     uvarint(count<<2 | 0b11) for all-one words; or
//   - a literal run: uvarint(count<<2 | 0b00) followed by count raw words.
type Compressed struct {
	n    int // number of bits
	data []byte
}

const (
	runLiteral = 0b00
	runZeros   = 0b01
	runOnes    = 0b11
)

// Compress converts a dense bitmap to its RLE form.
func Compress(b *Bitmap) *Compressed {
	var data []byte
	var tmp [binary.MaxVarintLen64]byte
	words := b.words
	emitFill := func(count int, kind uint64) {
		n := binary.PutUvarint(tmp[:], uint64(count)<<2|kind)
		data = append(data, tmp[:n]...)
	}
	emitLiteral := func(ws []uint64) {
		n := binary.PutUvarint(tmp[:], uint64(len(ws))<<2|runLiteral)
		data = append(data, tmp[:n]...)
		for _, w := range ws {
			binary.LittleEndian.PutUint64(tmp[:8], w)
			data = append(data, tmp[:8]...)
		}
	}
	i := 0
	for i < len(words) {
		w := words[i]
		if w == 0 || w == ^uint64(0) {
			j := i + 1
			for j < len(words) && words[j] == w {
				j++
			}
			// Only worth a fill run if it actually saves space versus
			// literals (a run of 1 identical word is still fine as fill:
			// 1-2 varint bytes beat 8 literal bytes).
			if w == 0 {
				emitFill(j-i, runZeros)
			} else {
				emitFill(j-i, runOnes)
			}
			i = j
			continue
		}
		// Literal run: extend until the next fillable word.
		j := i + 1
		for j < len(words) && words[j] != 0 && words[j] != ^uint64(0) {
			j++
		}
		emitLiteral(words[i:j])
		i = j
	}
	return &Compressed{n: b.n, data: data}
}

// Decompress expands the RLE form back to a dense bitmap.
func (c *Compressed) Decompress() (*Bitmap, error) {
	b := New(c.n)
	data := c.data
	wi := 0
	for len(data) > 0 {
		hdr, off := binary.Uvarint(data)
		if off <= 0 {
			return nil, fmt.Errorf("bitmap: corrupt compressed run header")
		}
		data = data[off:]
		count := int(hdr >> 2)
		kind := hdr & 0b11
		if wi+count > len(b.words) {
			return nil, fmt.Errorf("bitmap: compressed run overflows %d words", len(b.words))
		}
		switch kind {
		case runZeros:
			wi += count // words are already zero
		case runOnes:
			for k := 0; k < count; k++ {
				b.words[wi] = ^uint64(0)
				wi++
			}
		case runLiteral:
			if len(data) < 8*count {
				return nil, fmt.Errorf("bitmap: truncated literal run")
			}
			for k := 0; k < count; k++ {
				b.words[wi] = binary.LittleEndian.Uint64(data)
				data = data[8:]
				wi++
			}
		default:
			return nil, fmt.Errorf("bitmap: unknown run kind %d", kind)
		}
	}
	if wi != len(b.words) {
		return nil, fmt.Errorf("bitmap: compressed form covers %d of %d words", wi, len(b.words))
	}
	b.clearTail()
	return b, nil
}

// Len returns the number of bits in the decompressed bitmap.
func (c *Compressed) Len() int { return c.n }

// SizeBytes returns the in-memory footprint of the compressed form.
func (c *Compressed) SizeBytes() int { return len(c.data) + 16 }
