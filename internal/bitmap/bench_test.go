package bitmap

import (
	"math/rand"
	"testing"
)

func benchBitmap(n int, density float64, seed int64) *Bitmap {
	rng := rand.New(rand.NewSource(seed))
	b := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			b.Set(i)
		}
	}
	return b
}

func BenchmarkAnd64K(b *testing.B) {
	x := benchBitmap(1<<16, 0.5, 1)
	y := benchBitmap(1<<16, 0.5, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.And(y)
	}
}

func BenchmarkNot64K(b *testing.B) {
	x := benchBitmap(1<<16, 0.5, 1)
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.Not()
	}
}

func BenchmarkCount64K(b *testing.B) {
	x := benchBitmap(1<<16, 0.5, 1)
	for i := 0; i < b.N; i++ {
		_ = x.Count()
	}
}

func BenchmarkCompressSparse(b *testing.B) {
	x := benchBitmap(1<<16, 0.01, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Compress(x)
	}
}

func BenchmarkDecompressSparse(b *testing.B) {
	c := Compress(benchBitmap(1<<16, 0.01, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(); err != nil {
			b.Fatal(err)
		}
	}
}
