package bitmap

import (
	"fmt"
	"math/rand"
	"testing"
)

// stripedPatterns builds the adversarial pattern matrix for one length:
// uniform extremes, single bits at the edges, word-boundary stripes,
// alternating runs, and seeded random fills at skewed densities — the shapes
// that exercise every tag kind, the trailing partial word and the partial
// tail stripe.
func stripedPatterns(n int) map[string]*Bitmap {
	pats := map[string]*Bitmap{
		"empty": New(n),
		"full":  NewFull(n),
	}
	first := New(n)
	first.Set(0)
	pats["first-bit"] = first
	last := New(n)
	last.Set(n - 1)
	pats["last-bit"] = last

	alt := New(n)
	for i := 0; i < n; i += 2 {
		alt.Set(i)
	}
	pats["alternating-bits"] = alt

	// Whole words alternate all-ones / all-zeros: mixed stripes made of
	// uniform words, plus a partial trailing word.
	altWords := New(n)
	for i := 0; i < n; i++ {
		if (i/wordBits)%2 == 0 {
			altWords.Set(i)
		}
	}
	pats["alternating-words"] = altWords

	// Whole stripes alternate: pure all-ones and all-zero cache lines.
	altStripes := New(n)
	for i := 0; i < n; i++ {
		if (i/stripeBits)%2 == 0 {
			altStripes.Set(i)
		}
	}
	pats["alternating-stripes"] = altStripes

	run := New(n)
	for i := 0; i < (2*n+2)/3; i++ {
		run.Set(i)
	}
	pats["leading-ones-run"] = run

	tail := New(n)
	for i := n / 3; i < n; i++ {
		tail.Set(i)
	}
	pats["trailing-ones-run"] = tail

	rng := rand.New(rand.NewSource(int64(n)))
	for _, density := range []float64{0.01, 0.5, 0.99} {
		b := New(n)
		for i := 0; i < n; i++ {
			if rng.Float64() < density {
				b.Set(i)
			}
		}
		pats[fmt.Sprintf("random-%.0f%%", density*100)] = b
	}
	return pats
}

// stripedLens covers word and stripe boundaries from both sides, a lone
// partial word, and multi-stripe sizes with and without a partial tail.
var stripedLens = []int{1, 63, 64, 65, 511, 512, 513, 1000, 1024, 4095, 4096, 4097}

func forEachPattern(t *testing.T, fn func(t *testing.T, name string, n int, b *Bitmap)) {
	t.Helper()
	for _, n := range stripedLens {
		for name, b := range stripedPatterns(n) {
			fn(t, name, n, b)
		}
	}
}

func TestStripedRoundTrip(t *testing.T) {
	forEachPattern(t, func(t *testing.T, name string, n int, b *Bitmap) {
		got := Stripe(b).ToBitmap()
		if !got.Equal(b) {
			t.Fatalf("%s n=%d: ToBitmap(Stripe(b)) != b", name, n)
		}
	})
}

func TestStripedCountAndLen(t *testing.T) {
	forEachPattern(t, func(t *testing.T, name string, n int, b *Bitmap) {
		s := Stripe(b)
		if s.Len() != n {
			t.Fatalf("%s n=%d: Len = %d", name, n, s.Len())
		}
		if s.Count() != b.Count() {
			t.Fatalf("%s n=%d: Count = %d, dense %d", name, n, s.Count(), b.Count())
		}
	})
}

func TestStripedWordIteration(t *testing.T) {
	forEachPattern(t, func(t *testing.T, name string, n int, b *Bitmap) {
		s := Stripe(b)
		for wi := range b.words {
			if got, want := s.Word(wi), b.words[wi]; got != want {
				t.Fatalf("%s n=%d: Word(%d) = %#x, dense %#x", name, n, wi, got, want)
			}
		}
	})
}

func TestStripedCombineKernels(t *testing.T) {
	forEachPattern(t, func(t *testing.T, name string, n int, b *Bitmap) {
		s := Stripe(b)
		// The destination mixes densities so every stripe kind meets set,
		// clear and partial destination words.
		rng := rand.New(rand.NewSource(int64(n) * 31))
		dst := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) > 0 {
				dst.Set(i)
			}
		}

		and := dst.Clone()
		s.AndInto(and)
		wantAnd := dst.Clone()
		wantAnd.And(b)
		if !and.Equal(wantAnd) {
			t.Fatalf("%s n=%d: AndInto mismatch", name, n)
		}

		andNot := dst.Clone()
		s.AndNotInto(andNot)
		wantAndNot := dst.Clone()
		wantAndNot.AndNot(b)
		if !andNot.Equal(wantAndNot) {
			t.Fatalf("%s n=%d: AndNotInto mismatch", name, n)
		}

		or := dst.Clone()
		s.OrInto(or)
		wantOr := dst.Clone()
		wantOr.Or(b)
		if !or.Equal(wantOr) {
			t.Fatalf("%s n=%d: OrInto mismatch", name, n)
		}
		// Whole-line ones fills must not leak bits past Len (the tail-stripe
		// classification rule).
		if or.Count() > n {
			t.Fatalf("%s n=%d: OrInto set %d bits past length", name, n, or.Count()-n)
		}
	})
}

// TestStripedStoragePosInjective is the stripe-index-math guard: every mixed
// word maps to a distinct in-range arena slot holding exactly the dense word,
// and every uniform word maps nowhere.
func TestStripedStoragePosInjective(t *testing.T) {
	forEachPattern(t, func(t *testing.T, name string, n int, b *Bitmap) {
		s := Stripe(b)
		seen := make(map[int]int)
		for wi := range b.words {
			pos, ok := s.storagePos(wi)
			if s.tags[wi/stripeWords] != stripeMixed {
				if ok {
					t.Fatalf("%s n=%d: uniform word %d reported stored", name, n, wi)
				}
				continue
			}
			if !ok {
				t.Fatalf("%s n=%d: mixed word %d reported unstored", name, n, wi)
			}
			if pos < 0 || pos >= len(s.words) {
				t.Fatalf("%s n=%d: word %d arena pos %d out of range [0,%d)", name, n, wi, pos, len(s.words))
			}
			if prev, dup := seen[pos]; dup {
				t.Fatalf("%s n=%d: words %d and %d collide at arena pos %d", name, n, prev, wi, pos)
			}
			seen[pos] = wi
			if s.words[pos] != b.words[wi] {
				t.Fatalf("%s n=%d: arena[%d] = %#x, dense word %d = %#x", name, n, pos, s.words[pos], wi, b.words[wi])
			}
		}
	})
}

// TestStripedTailNeverOnes: the tail stripe is classified zeros or mixed even
// when every valid bit is set, so uniform-stripe synthesis (Word, OrInto,
// Count) never has to consult the tail mask.
func TestStripedTailNeverOnes(t *testing.T) {
	for _, n := range stripedLens {
		if n%stripeBits == 0 {
			continue // no partial tail stripe
		}
		s := Stripe(NewFull(n))
		if last := s.tags[len(s.tags)-1]; last == stripeOnes {
			t.Fatalf("n=%d: partial tail stripe tagged all-ones", n)
		}
	}
	// A full-length all-ones bitmap may (and should) tag every stripe ones.
	s := Stripe(NewFull(4 * stripeBits))
	for si, tag := range s.tags {
		if tag != stripeOnes {
			t.Fatalf("aligned full bitmap: stripe %d tag = %d, want ones", si, tag)
		}
	}
	if len(s.words) != 0 {
		t.Fatalf("aligned full bitmap should store no arena words, got %d", len(s.words))
	}
}

func TestStripedPanics(t *testing.T) {
	s := Stripe(NewFull(100))
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("Word(-1)", func() { s.Word(-1) })
	mustPanic("Word(past end)", func() { s.Word(2) })
	mustPanic("AndInto length mismatch", func() { s.AndInto(New(101)) })
}

func TestStripedSizeBytesSkewedIsCompact(t *testing.T) {
	// A heavily skewed bitmap (the hot-predicate shape) must stripe to well
	// under its dense footprint: uniform lines cost tag+offset only.
	n := 64 * stripeBits
	b := New(n)
	for i := 0; i < stripeBits; i++ {
		b.Set(i) // first stripe all-ones
	}
	b.Set(n - 1) // last stripe mixed; everything between stays zeros
	s := Stripe(b)
	if got, dense := s.SizeBytes(), b.SizeBytes(); got >= dense/4 {
		t.Fatalf("skewed striped size %d not compact vs dense %d", got, dense)
	}
	if !s.ToBitmap().Equal(b) {
		t.Fatal("compact form round-trip failed")
	}
}
