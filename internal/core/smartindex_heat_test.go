package core

import (
	"testing"
	"time"

	"repro/internal/sqlparser"
)

func TestHeatPromotionAndStripedLookup(t *testing.T) {
	// k=2: warmup is 8 touches, threshold total/2 — a hammered atom is
	// guaranteed heavy quickly.
	s := New(Options{HeavyHitters: 2})
	a := atom("c2", sqlparser.OpGt, 5)
	want := bm(1024, 3, 700, 701)
	s.Store("b0", a, want, stats(0, 9, 0))

	if _, ok := s.LookupStriped(ctxb, "b0", a, 1024); ok {
		t.Fatal("cold entry must not answer the striped probe")
	}
	for i := 0; i < 12; i++ {
		if _, ok := s.Lookup(ctxb, "b0", a, 1024); !ok {
			t.Fatalf("lookup %d missed", i)
		}
	}
	st := s.Stats()
	if st.Promoted == 0 || st.HotEntries != 1 {
		t.Fatalf("hammered atom not promoted: %+v", st)
	}

	sb, ok := s.LookupStriped(ctxb, "b0", a, 1024)
	if !ok {
		t.Fatal("hot entry should answer the striped probe")
	}
	if !sb.ToBitmap().Equal(want) {
		t.Fatal("striped form diverged from the stored bitmap")
	}

	// The pre-materialized negation answers NOT(atom) without a scan.
	na := a
	na.Negated = true
	nb, ok := s.LookupStriped(ctxb, "b0", na, 1024)
	if !ok {
		t.Fatal("hot entry should answer the negated striped probe")
	}
	wantNeg := want.Clone()
	wantNeg.Not()
	if !nb.ToBitmap().Equal(wantNeg) {
		t.Fatal("pre-materialized negation diverged from bit-NOT")
	}
	if st := s.Stats(); st.StripedHits < 2 {
		t.Fatalf("striped hits = %d, want >= 2: %+v", st.StripedHits, st)
	}

	// Dense lookups still work against the hot (striped-only) entry.
	got, ok := s.Lookup(ctxb, "b0", a, 1024)
	if !ok || !got.Equal(want) {
		t.Fatal("dense lookup against hot entry diverged")
	}
}

func TestHeatNegationUnsoundWithNulls(t *testing.T) {
	s := New(Options{HeavyHitters: 2})
	a := atom("c2", sqlparser.OpGt, 5)
	s.Store("b0", a, bm(1024, 3), stats(0, 9, 7)) // column has NULLs
	for i := 0; i < 12; i++ {
		s.Lookup(ctxb, "b0", a, 1024)
	}
	if s.Stats().HotEntries != 1 {
		t.Fatalf("positive entry should still promote: %+v", s.Stats())
	}
	na := a
	na.Negated = true
	if _, ok := s.LookupStriped(ctxb, "b0", na, 1024); ok {
		t.Fatal("negation over a NULL-bearing column must not be pre-materialized")
	}
	if _, ok := s.Lookup(ctxb, "b0", na, 1024); ok {
		t.Fatal("negated dense lookup must miss with NULLs present")
	}
	if _, ok := s.LookupStriped(ctxb, "b0", a, 1024); !ok {
		t.Fatal("positive striped probe should still answer")
	}
}

func TestHeatHotEntriesTTLExempt(t *testing.T) {
	clk := newClock()
	s := New(Options{HeavyHitters: 2, TTL: time.Hour, Now: clk.now})
	hot := atom("c2", sqlparser.OpGt, 5)
	cold := atom("c9", sqlparser.OpGt, 1)
	s.Store("b0", hot, bm(64, 1), stats(0, 9, 0))
	s.Store("b0", cold, bm(64, 2), stats(0, 9, 0))
	for i := 0; i < 12; i++ {
		s.Lookup(ctxb, "b0", hot, 64)
	}
	if s.Stats().HotEntries != 1 {
		t.Fatalf("setup failed to promote: %+v", s.Stats())
	}
	clk.advance(3 * time.Hour)
	if _, ok := s.Lookup(ctxb, "b0", cold, 64); ok {
		t.Error("cold entry should expire")
	}
	if _, ok := s.Lookup(ctxb, "b0", hot, 64); !ok {
		t.Error("hot entry must be TTL-exempt while its atom stays heavy")
	}
}

func TestHeatDecayRebalanceDemotesCooledAtoms(t *testing.T) {
	// DecayInterval 16 with k=2: a hammered atom promotes, then a workload
	// shift (two new atoms sharing all traffic) replaces it in the sketch and
	// the next rebalance demotes its entry back to the cold LRU.
	s := New(Options{HeavyHitters: 2, DecayInterval: 16})
	a := atom("c2", sqlparser.OpGt, 5)
	want := bm(256, 7, 99)
	s.Store("b0", a, want, stats(0, 9, 0))
	for i := 0; i < 12; i++ {
		s.Lookup(ctxb, "b0", a, 256)
	}
	if s.Stats().HotEntries != 1 {
		t.Fatalf("setup failed to promote: %+v", s.Stats())
	}

	b1 := atom("c3", sqlparser.OpGt, 1)
	b2 := atom("c3", sqlparser.OpGt, 2)
	for i := 0; i < 64; i++ {
		s.Lookup(ctxb, "b0", b1, 256)
		s.Lookup(ctxb, "b0", b2, 256)
	}
	st := s.Stats()
	if st.Demoted == 0 || st.HotEntries != 0 {
		t.Fatalf("cooled atom not demoted after decay/rebalance: %+v", st)
	}
	// Content survives the striped->dense restoration.
	got, ok := s.Lookup(ctxb, "b0", a, 256)
	if !ok || !got.Equal(want) {
		t.Fatal("demoted entry lost its bitmap")
	}
	if _, ok := s.LookupStriped(ctxb, "b0", a, 256); ok {
		t.Fatal("demoted entry must not answer the striped probe")
	}
}

func TestHeatWarmupSuppressesEarlyPromotion(t *testing.T) {
	// Before the sketch has seen heatWarmupMultiple*k touches, nothing
	// promotes — a tiny observed total would classify the first k atoms as
	// heavy regardless of the real distribution.
	s := New(Options{HeavyHitters: 8})
	a := atom("c2", sqlparser.OpGt, 5)
	s.Store("b0", a, bm(64, 1), stats(0, 9, 0))
	for i := 0; i < heatWarmupMultiple*8-2; i++ {
		s.Lookup(ctxb, "b0", a, 64)
	}
	if st := s.Stats(); st.Promoted != 0 || st.HotEntries != 0 {
		t.Fatalf("promotion before sketch warmup: %+v", st)
	}
	for i := 0; i < 4; i++ {
		s.Lookup(ctxb, "b0", a, 64)
	}
	if st := s.Stats(); st.Promoted == 0 {
		t.Fatalf("no promotion after warmup: %+v", st)
	}
}

func TestHeatStoreDirectToHot(t *testing.T) {
	// Once an atom is classified hot, a Store for a new block goes straight
	// into the hot tier in striped form.
	s := New(Options{HeavyHitters: 2})
	a := atom("c2", sqlparser.OpGt, 5)
	s.Store("b0", a, bm(64, 1), stats(0, 9, 0))
	for i := 0; i < 12; i++ {
		s.Lookup(ctxb, "b0", a, 64)
	}
	before := s.Stats().Promoted
	s.Store("b1", a, bm(64, 2), stats(0, 9, 0))
	if got := s.Stats(); got.Promoted != before+1 || got.HotEntries != 2 {
		t.Fatalf("store of a hot atom should land hot: %+v", got)
	}
	if _, ok := s.LookupStriped(ctxb, "b1", a, 64); !ok {
		t.Fatal("direct-to-hot entry should answer the striped probe")
	}
}

// TestEnforceBudgetIncomingSurvives is the regression for the two-pass
// eviction bug: storing into a full budget must evict older entries — even
// pinned ones — before the entry being stored, never churning it out ahead
// of its first lookup.
func TestEnforceBudgetIncomingSurvives(t *testing.T) {
	s := New(Options{MemoryBudget: 600}) // fits two ~260-byte dense entries
	a0 := atom("c", sqlparser.OpGt, 0)
	a1 := atom("c", sqlparser.OpGt, 1)
	a2 := atom("c", sqlparser.OpGt, 2)
	s.Pin("b0|") // everything resident is pinned: the old first pass found
	// no unpinned victim and the second evicted the just-stored entry
	s.Store("b0", a0, bm(1024, 0), stats(0, 9, 0))
	s.Store("b0", a1, bm(1024, 1), stats(0, 9, 0))
	s.Store("b1", a2, bm(1024, 2), stats(0, 9, 0)) // unpinned incoming
	if _, ok := s.Lookup(ctxb, "b1", a2, 1024); !ok {
		t.Fatal("just-stored entry was evicted while older candidates existed")
	}
	st := s.Stats()
	if st.EvictedLRU == 0 {
		t.Fatalf("expected pinned victims to be shed: %+v", st)
	}
	if st.Bytes > 600 {
		t.Fatalf("budget violated: %+v", st)
	}
	if st.EvictedLRU != st.EvictedLRUHot+st.EvictedLRUCold {
		t.Fatalf("eviction attribution out of balance: %+v", st)
	}
}

// TestEvictionAttributionPerTier forces evictions out of both tiers and
// checks EvictedLRU always equals the per-tier split.
func TestEvictionAttributionPerTier(t *testing.T) {
	s := New(Options{HeavyHitters: 2, HotShare: 1, MemoryBudget: 1500})
	hot := atom("c2", sqlparser.OpGt, 5)
	// Alternating bits: both the striped form and its negation are fully
	// mixed, so the hot entry is large enough that the final oversized store
	// below cannot fit beside it.
	alt := bm(1024)
	for i := 0; i < 1024; i += 2 {
		alt.Set(i)
	}
	s.Store("b0", hot, alt, stats(0, 9, 0))
	for i := 0; i < 12; i++ {
		s.Lookup(ctxb, "b0", hot, 1024)
	}
	if s.Stats().HotEntries != 1 {
		t.Fatalf("setup failed to promote: %+v", s.Stats())
	}
	// Fill the cold tier past the budget: cold-attributed evictions.
	for i := 0; i < 6; i++ {
		s.Store("b0", atom("c9", sqlparser.OpGt, int64(i)), bm(1024, i), stats(0, 99, 0))
	}
	st := s.Stats()
	if st.EvictedLRUCold == 0 {
		t.Fatalf("cold churn produced no cold-attributed evictions: %+v", st)
	}
	if st.EvictedLRUHot != 0 {
		t.Fatalf("cold churn must not evict the hot tier: %+v", st)
	}
	// A store too large for cold alone pushes into the hot tier:
	// hot-attributed eviction.
	s.Store("b9", atom("c9", sqlparser.OpGt, 99), bm(8192, 1), stats(0, 99, 0))
	st = s.Stats()
	if st.EvictedLRUHot == 0 {
		t.Fatalf("oversized store did not reach the hot tier: %+v", st)
	}
	if st.EvictedLRU != st.EvictedLRUHot+st.EvictedLRUCold {
		t.Fatalf("eviction attribution out of balance: %+v", st)
	}
	if st.Bytes > 1500 {
		t.Fatalf("budget violated: %+v", st)
	}
}

func TestHeatLoadGauges(t *testing.T) {
	s := New(Options{HeavyHitters: 2, HotShare: 1, MemoryBudget: 4096})
	a := atom("c2", sqlparser.OpGt, 5)
	s.Store("b0", a, bm(1024, 3), stats(0, 9, 0))
	entries, bytes, budget := s.HeatLoad()
	if entries != 0 || bytes != 0 {
		t.Fatalf("cold index reported hot load %d/%d", entries, bytes)
	}
	for i := 0; i < 12; i++ {
		s.Lookup(ctxb, "b0", a, 1024)
	}
	entries, bytes, budget = s.HeatLoad()
	if entries != 1 || bytes <= 0 || budget <= 0 {
		t.Fatalf("HeatLoad = %d entries, %d bytes, %d budget", entries, bytes, budget)
	}
	st := s.Stats()
	if st.HotEntries != entries || st.HotBytes != bytes || st.HotBudget != budget {
		t.Fatalf("HeatLoad diverges from Stats: %+v vs %d/%d/%d", st, entries, bytes, budget)
	}
}
