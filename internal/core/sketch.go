package core

// SpaceSaving is the classic space-saving heavy-hitter sketch (Metwally,
// Agrawal, El Abbadi: "Efficient Computation of Frequent and Top-k Elements
// in Data Streams"), used by the SmartIndex to track predicate-atom heat
// with k counters instead of one per distinct atom.
//
// Guarantees with k counters over a stream of N touches:
//   - every key whose true frequency exceeds N/k is tracked and reported by
//     Heavy() (no false negatives);
//   - for every tracked key, trueCount <= Count <= trueCount + Err and
//     Err <= N/k (the estimate overshoots by at most N/k).
//
// Decay halves every counter (and the stream length) so a shifting workload
// sheds stale heat instead of being dominated by history. The sketch is not
// itself goroutine-safe; SmartIndex drives it under its own mutex.
type SpaceSaving struct {
	k     int
	items map[string]*ssItem
	total int64
}

// ssItem is one monitored key.
type ssItem struct {
	key   string
	count int64
	err   int64 // inherited overestimate at adoption time
}

// HeavyHitter is one reported heavy key with its estimate bounds.
type HeavyHitter struct {
	Key   string
	Count int64 // estimated frequency (over-estimate)
	Err   int64 // maximum overshoot: true frequency >= Count-Err
}

// NewSpaceSaving returns a sketch with k counters (min 1).
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		k = 1
	}
	return &SpaceSaving{k: k, items: make(map[string]*ssItem, k)}
}

// Touch records one occurrence of key and returns its updated estimate.
func (s *SpaceSaving) Touch(key string) int64 {
	s.total++
	if it, ok := s.items[key]; ok {
		it.count++
		return it.count
	}
	if len(s.items) < s.k {
		s.items[key] = &ssItem{key: key, count: 1}
		return 1
	}
	// Replace the minimum counter: the newcomer adopts min+1 with error min
	// (it may have occurred up to min times while unmonitored).
	min := s.minItem()
	delete(s.items, min.key)
	min.key = key
	min.err = min.count
	min.count++
	s.items[key] = min
	return min.count
}

// minItem returns the tracked item with the smallest count. Caller ensures
// the sketch is non-empty. k is small (tens), so a linear scan is cheap and
// keeps the structure allocation-free on the hot path.
func (s *SpaceSaving) minItem() *ssItem {
	var min *ssItem
	for _, it := range s.items {
		if min == nil || it.count < min.count {
			min = it
		}
	}
	return min
}

// Estimate returns the key's (count, err) bounds, or ok=false when the key
// is not monitored (its true frequency is then at most Total()/k).
func (s *SpaceSaving) Estimate(key string) (count, err int64, ok bool) {
	it, found := s.items[key]
	if !found {
		return 0, 0, false
	}
	return it.count, it.err, true
}

// Total returns the (decayed) stream length N.
func (s *SpaceSaving) Total() int64 { return s.total }

// Threshold returns the heavy-hitter frequency bar N/k (at least 1).
func (s *SpaceSaving) Threshold() int64 {
	t := s.total / int64(s.k)
	if t < 1 {
		t = 1
	}
	return t
}

// Heavy reports every tracked key whose estimate reaches the N/k bar. This
// is a superset of the true heavy hitters: any key with true frequency
// > N/k is guaranteed present (its counter is at least its true frequency).
func (s *SpaceSaving) Heavy() []HeavyHitter {
	bar := s.Threshold()
	out := make([]HeavyHitter, 0, len(s.items))
	for _, it := range s.items {
		if it.count >= bar {
			out = append(out, HeavyHitter{Key: it.key, Count: it.count, Err: it.err})
		}
	}
	return out
}

// GuaranteedHeavy reports the keys whose guaranteed frequency (Count-Err)
// reaches the N/k bar — no false positives. The SmartIndex promotes on this
// conservative set so a near-uniform workload (where every counter is mostly
// inherited error) reserves no hot budget.
func (s *SpaceSaving) GuaranteedHeavy() []HeavyHitter {
	bar := s.Threshold()
	out := make([]HeavyHitter, 0, len(s.items))
	for _, it := range s.items {
		if it.count-it.err >= bar {
			out = append(out, HeavyHitter{Key: it.key, Count: it.count, Err: it.err})
		}
	}
	return out
}

// Decay halves every counter, error and the stream length, dropping keys
// that reach zero. Relative heat is preserved; absolute history fades, so a
// workload shift rebuilds the heavy set within ~one decay interval.
func (s *SpaceSaving) Decay() {
	for key, it := range s.items {
		it.count /= 2
		it.err /= 2
		if it.count == 0 {
			delete(s.items, key)
		}
	}
	s.total /= 2
}

// Len returns the number of monitored keys (<= k).
func (s *SpaceSaving) Len() int { return len(s.items) }
