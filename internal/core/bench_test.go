package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/sqlparser"
)

func BenchmarkLookupHit(b *testing.B) {
	s := New(Options{})
	a := atom("c", sqlparser.OpGt, 5)
	s.Store("b0", a, bm(4096, 1, 99, 2048), stats(0, 9, 0))
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Lookup(ctx, "b0", a, 4096); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkLookupDerivedComplement(b *testing.B) {
	s := New(Options{})
	s.Store("b0", atom("c", sqlparser.OpGt, 5), bm(4096, 1, 99), stats(0, 9, 0))
	want := atom("c", sqlparser.OpLe, 5)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Lookup(ctx, "b0", want, 4096); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkStoreDense(b *testing.B) {
	s := New(Options{})
	vec := bm(4096, 7, 1000, 3000)
	st := stats(0, 9, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Store(fmt.Sprintf("b%d", i%64), atom("c", sqlparser.OpGt, int64(i%32)), vec, st)
	}
}

func BenchmarkStoreCompressed(b *testing.B) {
	s := New(Options{Compress: true})
	vec := bm(4096, 7, 1000, 3000)
	st := stats(0, 9, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Store(fmt.Sprintf("b%d", i%64), atom("c", sqlparser.OpGt, int64(i%32)), vec, st)
	}
}
