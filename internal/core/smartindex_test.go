package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/bitmap"
	"repro/internal/colstore"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

var ctxb = context.Background()

// fakeClock is an injectable time source.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func atom(col string, op sqlparser.BinaryOp, v int64) plan.Atom {
	return plan.Atom{Col: col, Op: op, Val: types.NewInt(v)}
}

func bm(n int, set ...int) *bitmap.Bitmap {
	b := bitmap.New(n)
	for _, i := range set {
		b.Set(i)
	}
	return b
}

func stats(min, max int64, nulls int) colstore.Stats {
	return colstore.Stats{Min: types.NewInt(min), Max: types.NewInt(max), NullCount: nulls}
}

func TestStoreAndLookupExact(t *testing.T) {
	s := New(Options{})
	a := atom("c2", sqlparser.OpGt, 5)
	s.Store("b0", a, bm(10, 1, 3), stats(0, 9, 0))
	got, ok := s.Lookup(ctxb, "b0", a, 10)
	if !ok || got.Count() != 2 || !got.Get(1) || !got.Get(3) {
		t.Fatalf("lookup = %v, %v", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Stored != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLookupMiss(t *testing.T) {
	s := New(Options{})
	if _, ok := s.Lookup(ctxb, "b0", atom("c2", sqlparser.OpGt, 5), 10); ok {
		t.Error("empty index should miss")
	}
	if s.Stats().Misses != 1 {
		t.Errorf("stats = %+v", s.Stats())
	}
}

func TestLookupWrongBlockOrRowCount(t *testing.T) {
	s := New(Options{})
	a := atom("c2", sqlparser.OpGt, 5)
	s.Store("b0", a, bm(10, 1), stats(0, 9, 0))
	if _, ok := s.Lookup(ctxb, "b1", a, 10); ok {
		t.Error("different block should miss")
	}
	if _, ok := s.Lookup(ctxb, "b0", a, 11); ok {
		t.Error("row-count mismatch should invalidate")
	}
	if s.Stats().Entries != 0 {
		t.Error("mismatched entry should be dropped")
	}
}

func TestComplementDerivation(t *testing.T) {
	// Paper Fig. 7: a cached index for c2 > 5 answers c2 <= 5 via bit-NOT.
	s := New(Options{})
	s.Store("b0", atom("c2", sqlparser.OpGt, 5), bm(4, 0, 2), stats(0, 9, 0))
	got, ok := s.Lookup(ctxb, "b0", atom("c2", sqlparser.OpLe, 5), 4)
	if !ok {
		t.Fatal("complement lookup should hit")
	}
	if got.Get(0) || !got.Get(1) || got.Get(2) || !got.Get(3) {
		t.Errorf("derived bitmap = %v", got.Selected())
	}
	if s.Stats().DerivedHits != 1 {
		t.Errorf("stats = %+v", s.Stats())
	}
}

func TestNegatedAtomUsesPositiveEntry(t *testing.T) {
	s := New(Options{})
	a := plan.Atom{Col: "q", Op: sqlparser.OpContains, Val: types.NewString("spam")}
	s.Store("b0", a, bm(4, 1), colstore.Stats{})
	neg := a
	neg.Negated = true
	// The index answers the negated form via bit-NOT of the positive
	// entry (sound here: the stored stats report no NULLs).
	got, ok := s.Lookup(ctxb, "b0", neg, 4)
	if !ok {
		t.Fatal("negated lookup should hit")
	}
	if got.Get(1) || got.Count() != 3 {
		t.Fatalf("negated bitmap = %v", got.Selected())
	}
	if s.Stats().DerivedHits != 1 {
		t.Errorf("stats = %+v", s.Stats())
	}
}

func TestNegationDerivationUnsoundWithNulls(t *testing.T) {
	// A column with NULLs must not serve bit-NOT derivations: NULL rows
	// satisfy neither the predicate nor its complement.
	s := New(Options{})
	s.Store("b0", atom("c2", sqlparser.OpGt, 5), bm(4, 0, 2), stats(0, 9, 1))
	if _, ok := s.Lookup(ctxb, "b0", atom("c2", sqlparser.OpLe, 5), 4); ok {
		t.Error("complement derivation must be disabled with NULLs present")
	}
	neg := plan.Atom{Col: "c2", Op: sqlparser.OpGt, Val: types.NewInt(5), Negated: true}
	if _, ok := s.Lookup(ctxb, "b0", neg, 4); ok {
		t.Error("negated lookup must be disabled with NULLs present")
	}
	// The exact positive entry still hits.
	if _, ok := s.Lookup(ctxb, "b0", atom("c2", sqlparser.OpGt, 5), 4); !ok {
		t.Error("exact entry should still hit")
	}
}

func TestRangeMetadataAnswer(t *testing.T) {
	s := New(Options{})
	// Stored entry for c2 > 100 carries min=3 max=9 nulls=0; the atom
	// c2 <= 50 is therefore all-true for this block.
	s.Store("b0", atom("c2", sqlparser.OpGt, 100), bm(8), stats(3, 9, 0))
	got, ok := s.Lookup(ctxb, "b0", atom("c2", sqlparser.OpLe, 50), 8)
	if !ok || !got.All() {
		t.Fatalf("range answer = %v, %v", got, ok)
	}
	if s.Stats().DerivedHits != 1 {
		t.Errorf("stats = %+v", s.Stats())
	}
	// With NULLs present, the all-true shortcut is unsound and must miss.
	s2 := New(Options{})
	s2.Store("b0", atom("c2", sqlparser.OpGt, 100), bm(8), stats(3, 9, 2))
	if _, ok := s2.Lookup(ctxb, "b0", atom("c2", sqlparser.OpLe, 50), 8); ok {
		t.Error("NULLs must disable range answers")
	}
}

func TestTTLExpiry(t *testing.T) {
	clk := newClock()
	s := New(Options{TTL: time.Hour, Now: clk.now})
	a := atom("c2", sqlparser.OpGt, 5)
	s.Store("b0", a, bm(4, 0), stats(0, 9, 0))
	clk.advance(30 * time.Minute)
	if _, ok := s.Lookup(ctxb, "b0", a, 4); !ok {
		t.Fatal("fresh entry should hit")
	}
	clk.advance(2 * time.Hour)
	if _, ok := s.Lookup(ctxb, "b0", a, 4); ok {
		t.Fatal("expired entry should miss")
	}
	if s.Stats().EvictedTTL != 1 || s.Stats().Entries != 0 {
		t.Errorf("stats = %+v", s.Stats())
	}
}

func TestDefaultTTLIs72Hours(t *testing.T) {
	clk := newClock()
	s := New(Options{Now: clk.now})
	a := atom("c2", sqlparser.OpGt, 5)
	s.Store("b0", a, bm(4, 0), stats(0, 9, 0))
	clk.advance(71 * time.Hour)
	if _, ok := s.Lookup(ctxb, "b0", a, 4); !ok {
		t.Error("71h-old entry should survive the paper's 72h TTL")
	}
	clk.advance(2 * time.Hour)
	if _, ok := s.Lookup(ctxb, "b0", a, 4); ok {
		t.Error("73h-old entry should expire")
	}
}

func TestSweep(t *testing.T) {
	clk := newClock()
	s := New(Options{TTL: time.Hour, Now: clk.now})
	for i := 0; i < 5; i++ {
		s.Store(fmt.Sprintf("b%d", i), atom("c", sqlparser.OpGt, int64(i)), bm(4, 0), stats(0, 9, 0))
	}
	clk.advance(2 * time.Hour)
	s.Store("fresh", atom("c", sqlparser.OpGt, 99), bm(4, 0), stats(0, 9, 0))
	if removed := s.Sweep(); removed != 5 {
		t.Errorf("Sweep = %d, want 5", removed)
	}
	if s.Stats().Entries != 1 {
		t.Errorf("entries = %d", s.Stats().Entries)
	}
}

func TestLRUEvictionUnderBudget(t *testing.T) {
	s := New(Options{MemoryBudget: 2000})
	// Each dense 1024-bit entry is ~128+key+96 bytes; budget fits ~7.
	var atoms []plan.Atom
	for i := 0; i < 12; i++ {
		a := atom("c", sqlparser.OpGt, int64(i))
		atoms = append(atoms, a)
		s.Store("b0", a, bm(1024, i), stats(0, 99, 0))
	}
	st := s.Stats()
	if st.Bytes > 2000 {
		t.Errorf("bytes = %d over budget", st.Bytes)
	}
	if st.EvictedLRU == 0 {
		t.Error("expected LRU evictions")
	}
	// The oldest entries are gone; the newest survive.
	if _, ok := s.Lookup(ctxb, "b0", atoms[0], 1024); ok {
		t.Error("oldest entry should be evicted")
	}
	if _, ok := s.Lookup(ctxb, "b0", atoms[11], 1024); !ok {
		t.Error("newest entry should survive")
	}
}

func TestLRURecencyOrder(t *testing.T) {
	s := New(Options{MemoryBudget: 600}) // fits two ~260-byte dense entries
	a0 := atom("c", sqlparser.OpGt, 0)
	a1 := atom("c", sqlparser.OpGt, 1)
	s.Store("b0", a0, bm(1024, 0), stats(0, 99, 0))
	s.Store("b0", a1, bm(1024, 1), stats(0, 99, 0))
	// Touch a0 so a1 becomes the LRU victim.
	if _, ok := s.Lookup(ctxb, "b0", a0, 1024); !ok {
		t.Fatal("a0 should hit")
	}
	s.Store("b0", atom("c", sqlparser.OpGt, 2), bm(1024, 2), stats(0, 99, 0))
	if _, ok := s.Lookup(ctxb, "b0", a0, 1024); !ok {
		t.Error("recently used entry should survive")
	}
	if _, ok := s.Lookup(ctxb, "b0", a1, 1024); ok {
		t.Error("least recently used entry should be evicted")
	}
}

func TestOversizeEntryRejected(t *testing.T) {
	s := New(Options{MemoryBudget: 64})
	s.Store("b0", atom("c", sqlparser.OpGt, 0), bm(1<<16), stats(0, 99, 0))
	if s.Stats().Entries != 0 {
		t.Error("entry larger than budget must be rejected")
	}
}

func TestPinnedSurviveTTLAndEvictLast(t *testing.T) {
	clk := newClock()
	s := New(Options{TTL: time.Hour, Now: clk.now})
	s.Pin("b0|hot ")
	hot := atom("hot", sqlparser.OpGt, 1)
	cold := atom("cold", sqlparser.OpGt, 1)
	s.Store("b0", hot, bm(4, 0), stats(0, 9, 0))
	s.Store("b0", cold, bm(4, 1), stats(0, 9, 0))
	clk.advance(3 * time.Hour)
	if _, ok := s.Lookup(ctxb, "b0", cold, 4); ok {
		t.Error("unpinned entry should expire")
	}
	if _, ok := s.Lookup(ctxb, "b0", hot, 4); !ok {
		t.Error("pinned entry should survive TTL")
	}
	// Pinning after the fact marks existing entries.
	s2 := New(Options{})
	s2.Store("b0", hot, bm(4, 0), stats(0, 9, 0))
	s2.Pin("b0|hot ")
	s2.mu.Lock()
	for _, e := range s2.entries {
		if !e.pinned {
			t.Error("existing entry should be pinned retroactively")
		}
	}
	s2.mu.Unlock()
}

func TestPinnedEvictedUnderPressure(t *testing.T) {
	s := New(Options{MemoryBudget: 600})
	s.Pin("b0|p ")
	s.Store("b0", atom("p", sqlparser.OpGt, 0), bm(1024, 0), stats(0, 9, 0))
	// Fill with more pinned entries: second pass of enforceBudget must
	// still shed them rather than blow the budget.
	s.Store("b0", atom("p", sqlparser.OpGt, 1), bm(1024, 1), stats(0, 9, 0))
	s.Store("b0", atom("p", sqlparser.OpGt, 2), bm(1024, 2), stats(0, 9, 0))
	if s.Stats().Bytes > 600 {
		t.Errorf("budget violated: %d", s.Stats().Bytes)
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	s := New(Options{Compress: true})
	a := atom("c2", sqlparser.OpGt, 5)
	want := bm(1000, 5, 500, 999)
	s.Store("b0", a, want, stats(0, 9, 0))
	got, ok := s.Lookup(ctxb, "b0", a, 1000)
	if !ok || !got.Equal(want) {
		t.Fatalf("compressed lookup mismatch")
	}
	// Compressed sparse entries should be much smaller than dense.
	dense := New(Options{})
	dense.Store("b0", a, want, stats(0, 9, 0))
	if s.Stats().Bytes >= dense.Stats().Bytes {
		t.Errorf("compressed %d >= dense %d", s.Stats().Bytes, dense.Stats().Bytes)
	}
}

func TestInvalidate(t *testing.T) {
	s := New(Options{})
	s.Store("/t1/p0#0", atom("c", sqlparser.OpGt, 1), bm(4, 0), stats(0, 9, 0))
	s.Store("/t1/p0#1", atom("c", sqlparser.OpGt, 1), bm(4, 0), stats(0, 9, 0))
	s.Store("/t2/p0#0", atom("c", sqlparser.OpGt, 1), bm(4, 0), stats(0, 9, 0))
	if n := s.Invalidate("/t1/"); n != 2 {
		t.Errorf("Invalidate = %d", n)
	}
	if s.Stats().Entries != 1 {
		t.Errorf("entries = %d", s.Stats().Entries)
	}
}

func TestStoreReplacesEntry(t *testing.T) {
	s := New(Options{})
	a := atom("c", sqlparser.OpGt, 1)
	s.Store("b0", a, bm(4, 0), stats(0, 9, 0))
	s.Store("b0", a, bm(4, 1, 2), stats(0, 9, 0))
	got, _ := s.Lookup(ctxb, "b0", a, 4)
	if got.Count() != 2 {
		t.Errorf("replacement not effective: %v", got.Selected())
	}
	if s.Stats().Entries != 1 {
		t.Errorf("entries = %d", s.Stats().Entries)
	}
}

func TestResetCounters(t *testing.T) {
	s := New(Options{})
	a := atom("c", sqlparser.OpGt, 1)
	s.Store("b0", a, bm(4, 0), stats(0, 9, 0))
	s.Lookup(ctxb, "b0", a, 4)
	s.ResetCounters()
	st := s.Stats()
	if st.Hits != 0 || st.Stored != 0 {
		t.Errorf("counters not reset: %+v", st)
	}
	if st.Entries != 1 {
		t.Error("entries must survive counter reset")
	}
}

func TestPinAtomAcrossBlocks(t *testing.T) {
	clk := newClock()
	s := New(Options{TTL: time.Hour, Now: clk.now})
	hot := atom("c2", sqlparser.OpGt, 5)
	cold := atom("c2", sqlparser.OpGt, 9)
	s.Store("b0", hot, bm(4, 0), stats(0, 9, 0))
	s.Store("b1", hot, bm(4, 1), stats(0, 9, 0))
	s.Store("b0", cold, bm(4, 2), stats(0, 9, 0))
	s.PinAtom(hot.Key())
	clk.advance(2 * time.Hour)
	if _, ok := s.Lookup(ctxb, "b0", hot, 4); !ok {
		t.Error("pinned atom entry (b0) should survive TTL")
	}
	if _, ok := s.Lookup(ctxb, "b1", hot, 4); !ok {
		t.Error("pinned atom entry (b1) should survive TTL")
	}
	if _, ok := s.Lookup(ctxb, "b0", cold, 4); ok {
		t.Error("unpinned atom should expire")
	}
	// Future stores of the pinned atom are pinned too.
	s.Store("b2", hot, bm(4, 3), stats(0, 9, 0))
	clk.advance(2 * time.Hour)
	if _, ok := s.Lookup(ctxb, "b2", hot, 4); !ok {
		t.Error("new entry for pinned atom should be pinned")
	}
}

func TestUnpinAtom(t *testing.T) {
	clk := newClock()
	s := New(Options{TTL: time.Hour, Now: clk.now})
	hot := atom("c2", sqlparser.OpGt, 5)
	s.PinAtom(hot.Key())
	s.Store("b0", hot, bm(4, 0), stats(0, 9, 0))
	s.UnpinAtom(hot.Key())
	clk.advance(2 * time.Hour)
	if _, ok := s.Lookup(ctxb, "b0", hot, 4); ok {
		t.Error("unpinned entry should expire again")
	}
}
