package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// drive feeds a stream into a fresh sketch and returns it with the true
// per-key frequencies.
func drive(k int, stream []string) (*SpaceSaving, map[string]int64) {
	s := NewSpaceSaving(k)
	truth := make(map[string]int64)
	for _, key := range stream {
		s.Touch(key)
		truth[key]++
	}
	return s, truth
}

// zipfStream draws n keys from a Zipf(s) distribution over the given key
// space — the adversarial shape the sketch exists for.
func zipfStream(n int, seed int64, s float64, keys int) []string {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(keys-1))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("k%d", z.Uint64())
	}
	return out
}

// TestSpaceSavingNoFalseNegatives is the classic space-saving guarantee:
// every key whose true frequency exceeds N/k is tracked and reported by
// Heavy(), for random skewed streams across seeds, sketch sizes and skews.
func TestSpaceSavingNoFalseNegatives(t *testing.T) {
	for _, k := range []int{4, 16, 64} {
		for _, skew := range []float64{1.1, 1.5, 2.5} {
			for seed := int64(1); seed <= 5; seed++ {
				s, truth := drive(k, zipfStream(20_000, seed, skew, 4096))
				heavy := make(map[string]HeavyHitter)
				for _, h := range s.Heavy() {
					heavy[h.Key] = h
				}
				bar := s.Total() / int64(k)
				for key, freq := range truth {
					if freq > bar {
						if _, ok := heavy[key]; !ok {
							t.Fatalf("k=%d skew=%.1f seed=%d: true heavy hitter %s (freq %d > N/k=%d) not reported",
								k, skew, seed, key, freq, bar)
						}
					}
				}
			}
		}
	}
}

// TestSpaceSavingErrorBounds checks the estimate sandwich for every tracked
// key: trueFreq <= Count <= trueFreq + N/k, with Err <= N/k and
// Count - Err <= trueFreq (the bound GuaranteedHeavy promotion relies on).
func TestSpaceSavingErrorBounds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		const k = 16
		s, truth := drive(k, zipfStream(20_000, seed, 1.3, 4096))
		maxErr := s.Total() / int64(k)
		for _, h := range s.Heavy() {
			freq := truth[h.Key]
			if h.Count < freq {
				t.Fatalf("seed %d: %s count %d underestimates true %d", seed, h.Key, h.Count, freq)
			}
			if h.Count > freq+maxErr {
				t.Fatalf("seed %d: %s count %d overshoots true %d by more than N/k=%d", seed, h.Key, h.Count, freq, maxErr)
			}
			if h.Err > maxErr {
				t.Fatalf("seed %d: %s err %d exceeds N/k=%d", seed, h.Key, h.Err, maxErr)
			}
			if h.Count-h.Err > freq {
				t.Fatalf("seed %d: %s guaranteed count %d exceeds true %d", seed, h.Key, h.Count-h.Err, freq)
			}
		}
	}
}

// TestSpaceSavingGuaranteedHeavyNoFalsePositives: every key GuaranteedHeavy
// reports really does clear the N/k bar — the property that keeps the hot
// tier from promoting noise.
func TestSpaceSavingGuaranteedHeavyNoFalsePositives(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		const k = 16
		s, truth := drive(k, zipfStream(20_000, seed, 1.3, 4096))
		bar := s.Threshold()
		for _, h := range s.GuaranteedHeavy() {
			if truth[h.Key] < bar {
				t.Fatalf("seed %d: GuaranteedHeavy reported %s (true freq %d) below bar %d",
					seed, h.Key, truth[h.Key], bar)
			}
		}
	}
}

// TestSpaceSavingUniformRoundRobin: a round-robin stream over 3k distinct
// keys has no guaranteed-heavy keys — each adoption inherits the minimum
// counter as error, so Count-Err stays pinned near 1.
func TestSpaceSavingUniformRoundRobin(t *testing.T) {
	const k = 16
	s := NewSpaceSaving(k)
	for i := 0; i < 4800; i++ {
		s.Touch(fmt.Sprintf("k%d", i%(3*k)))
	}
	if gh := s.GuaranteedHeavy(); len(gh) != 0 {
		t.Fatalf("uniform round-robin produced guaranteed heavy hitters: %v", gh)
	}
	if s.Len() > k {
		t.Fatalf("sketch tracks %d keys, cap is %d", s.Len(), k)
	}
}

// TestSpaceSavingDecayDeterministic pins decay's exact arithmetic: counts,
// errors and the stream length all halve, and zeroed counters are dropped.
func TestSpaceSavingDecayDeterministic(t *testing.T) {
	s := NewSpaceSaving(3)
	for i := 0; i < 8; i++ {
		s.Touch("a")
	}
	for i := 0; i < 4; i++ {
		s.Touch("b")
	}
	s.Touch("c") // count 1: first decay zeroes and drops it

	s.Decay()
	if s.Total() != 6 { // 13/2
		t.Fatalf("total after decay = %d, want 6", s.Total())
	}
	if c, _, ok := s.Estimate("a"); !ok || c != 4 {
		t.Fatalf("a after decay = %d,%v want 4", c, ok)
	}
	if c, _, ok := s.Estimate("b"); !ok || c != 2 {
		t.Fatalf("b after decay = %d,%v want 2", c, ok)
	}
	if _, _, ok := s.Estimate("c"); ok {
		t.Fatal("c should be dropped when its counter decays to zero")
	}
	if s.Len() != 2 {
		t.Fatalf("len after decay = %d, want 2", s.Len())
	}

	// Error inheritance halves too: refill the sketch to capacity, then an
	// adoption replaces the minimum counter (count 1) and inherits it as err.
	s.Touch("x") // len back to k=3, x: count 1, err 0
	s.Touch("d") // replaces x: count 2, err 1
	if c, e, ok := s.Estimate("d"); !ok || c != 2 || e != 1 {
		t.Fatalf("adopted d = count %d err %d ok %v, want 2/1", c, e, ok)
	}
	s.Decay()
	if c, e, ok := s.Estimate("d"); !ok || c != 1 || e != 0 {
		t.Fatalf("d after decay = count %d err %d ok %v, want 1/0", c, e, ok)
	}
}

// TestSpaceSavingDecayPreservesRanking: relative heat order of well-separated
// keys survives a decay, so the hot set rebuilt afterwards is the same.
func TestSpaceSavingDecayPreservesRanking(t *testing.T) {
	s, _ := drive(8, zipfStream(10_000, 7, 2.0, 1024))
	type rank struct {
		key   string
		count int64
	}
	var before []rank
	for _, h := range s.GuaranteedHeavy() {
		before = append(before, rank{h.Key, h.Count})
	}
	if len(before) == 0 {
		t.Fatal("skewed stream produced no guaranteed heavy hitters")
	}
	s.Decay()
	for _, r := range before {
		c, _, ok := s.Estimate(r.key)
		if !ok {
			t.Fatalf("heavy key %s dropped by decay", r.key)
		}
		if c != r.count/2 {
			t.Fatalf("%s decayed %d -> %d, want %d", r.key, r.count, c, r.count/2)
		}
	}
}

// TestSpaceSavingMinK: k < 1 clamps to one counter and still works.
func TestSpaceSavingMinK(t *testing.T) {
	s := NewSpaceSaving(0)
	s.Touch("a")
	s.Touch("a")
	s.Touch("b")
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
	if c, e, ok := s.Estimate("b"); !ok || c != 3 || e != 2 {
		t.Fatalf("b = count %d err %d ok %v, want 3/2", c, e, ok)
	}
}
