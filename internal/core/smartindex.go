// Package core implements SmartIndex, the paper's primary contribution
// (§IV-C): an adaptive index that caches the evaluation result of each query
// predicate over each data block as a 0-1 vector in leaf-server memory.
// Later queries that reuse a predicate (the query-similarity pattern of
// §IV-A) skip both the data scan and the predicate evaluation; composed
// predicates are answered by bit operations over cached vectors (Fig. 7).
//
// Entries follow the paper's index schema (Fig. 6): block id, the
// op/colname/colvalue condition key, a compression flag, and range metadata.
// Management follows §IV-C2: a memory budget with LRU eviction, a
// time-to-live (72 h by default), and user preferences that can pin entries
// past their TTL while memory lasts.
package core

import (
	"container/list"
	"context"
	"strings"
	"sync"
	"time"

	"repro/internal/bitmap"
	"repro/internal/colstore"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/types"
)

// DefaultTTL is the paper's index time-to-live ("set to 72 hours based on
// our experiences").
const DefaultTTL = 72 * time.Hour

// Options configure a SmartIndex manager.
type Options struct {
	// MemoryBudget caps resident index bytes; <=0 means unlimited.
	MemoryBudget int64
	// TTL evicts entries older than this; <=0 uses DefaultTTL.
	TTL time.Duration
	// Compress parks entries in RLE form (the paper: "Feisu can compress
	// the index to improve memory efficiency").
	Compress bool
	// DisableDerivation turns off complement/range derived answers
	// (ablation of the Fig. 7 rewriting).
	DisableDerivation bool
	// Model prices index lookups as in-memory reads; nil disables cost
	// accounting.
	Model *sim.CostModel
	// Now is the clock (tests inject a fake one).
	Now func() time.Time
}

// Stats reports the manager's counters.
type Stats struct {
	Hits        int64 // exact-entry hits
	DerivedHits int64 // answered via complement entry or range metadata
	Misses      int64
	Stored      int64
	EvictedLRU  int64
	EvictedTTL  int64
	Bytes       int64
	Entries     int64
}

// SmartIndex is a leaf server's index manager. It implements
// exec.IndexSource.
type SmartIndex struct {
	opt Options

	mu       sync.Mutex
	entries  map[string]*entry
	lru      *list.List // front = most recent
	bytes    int64
	pins     []string        // pinned key prefixes (user preferences)
	pinAtoms map[string]bool // pinned atom keys, any block

	hits, derived, misses metrics.Counter
	stored, evLRU, evTTL  metrics.Counter
}

// entry is one cached predicate-evaluation result.
type entry struct {
	key     string // blockID + "|" + atom.Key()
	dense   *bitmap.Bitmap
	packed  *bitmap.Compressed
	numRows int
	// stats is the column's block-level range metadata ("range" in the
	// paper's index schema) used for derived answers.
	stats   colstore.Stats
	created time.Time
	lastUse time.Time
	size    int64
	elem    *list.Element
	pinned  bool
}

// New returns a SmartIndex with the given options.
func New(opt Options) *SmartIndex {
	if opt.TTL <= 0 {
		opt.TTL = DefaultTTL
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	return &SmartIndex{opt: opt, entries: make(map[string]*entry), lru: list.New(), pinAtoms: make(map[string]bool)}
}

func key(blockID string, a plan.Atom) string {
	pos := a
	pos.Negated = false
	return blockID + "|" + pos.Key()
}

// Pin registers a key-prefix preference: matching entries survive TTL
// expiry while memory lasts and are evicted last (paper §IV-C2: "interfaces
// for users to set preferences and retire strategies on indices").
func (s *SmartIndex) Pin(prefix string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pins = append(s.pins, prefix)
	for _, e := range s.entries {
		if strings.HasPrefix(e.key, prefix) {
			e.pinned = true
		}
	}
}

// PinAtom pins every current and future entry for the predicate atom
// across all blocks — the private-index personalization driven by
// client-side query-history collection (paper §III-C: "collection on the
// client side is used for SmartIndex to build private index for specific
// users or user groups").
func (s *SmartIndex) PinAtom(atomKey string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pinAtoms[atomKey] = true
	suffix := "|" + atomKey
	for _, e := range s.entries {
		if strings.HasSuffix(e.key, suffix) {
			e.pinned = true
		}
	}
}

// UnpinAtom removes an atom preference; existing entries fall back to
// normal LRU/TTL management.
func (s *SmartIndex) UnpinAtom(atomKey string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pinAtoms, atomKey)
	suffix := "|" + atomKey
	for _, e := range s.entries {
		if strings.HasSuffix(e.key, suffix) {
			e.pinned = s.prefixPinned(e.key)
		}
	}
}

// prefixPinned reports whether a key matches a prefix pin. Caller holds mu.
func (s *SmartIndex) prefixPinned(key string) bool {
	for _, p := range s.pins {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	return false
}

// Lookup implements exec.IndexSource. The returned bitmap is owned by the
// index and must not be mutated by the caller. It answers from an exact
// entry, from a complementary entry via bit-NOT (Fig. 7), or from range
// metadata when the stored stats prove an all-true result. A negated atom
// (NOT CONTAINS) is served by bit-NOT of its positive entry. Every bit-NOT
// derivation requires the block's column to be NULL-free: NULL rows
// satisfy neither a predicate nor its complement, so inverting a vector
// over a column with NULLs would wrongly select them — the stored range
// metadata carries the null count that gates this.
func (s *SmartIndex) Lookup(ctx context.Context, blockID string, a plan.Atom, n int) (*bitmap.Bitmap, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opt.Now()

	if a.Negated {
		pos := a
		pos.Negated = false
		if bm, ok := s.fetchInvertible(key(blockID, pos), n, now); ok {
			neg := bm.Clone()
			neg.Not()
			s.derived.Inc()
			trace.FromContext(ctx).Count("index.derived", 1)
			s.chargeLookup(ctx, n)
			return neg, true
		}
		s.misses.Inc()
		return nil, false
	}

	if bm, ok := s.fetch(key(blockID, a), n, now); ok {
		s.hits.Inc()
		s.chargeLookup(ctx, n)
		return bm, true
	}
	if s.opt.DisableDerivation {
		s.misses.Inc()
		return nil, false
	}
	// Complement derivation: an entry for the negated comparison answers
	// this atom via bit-NOT (e.g. cached "c > 5" serves "c <= 5").
	if comp, invertible := a.Op.Negate(); invertible {
		ca := a
		ca.Op = comp
		if bm, ok := s.fetchInvertible(key(blockID, ca), n, now); ok {
			neg := bm.Clone()
			neg.Not()
			s.derived.Inc()
			trace.FromContext(ctx).Count("index.derived", 1)
			s.chargeLookup(ctx, n)
			return neg, true
		}
	}
	// Range metadata: any cached entry for the same block+column carries
	// the column's min/max; if they prove the atom all-true, answer
	// without a stored vector.
	if bm, ok := s.rangeAnswer(blockID, a, n, now); ok {
		s.derived.Inc()
		trace.FromContext(ctx).Count("index.derived", 1)
		s.chargeLookup(ctx, n)
		return bm, true
	}
	s.misses.Inc()
	return nil, false
}

// fetchInvertible fetches an entry only when bit-NOT over it is sound
// (NULL-free column). Caller holds s.mu.
func (s *SmartIndex) fetchInvertible(k string, n int, now time.Time) (*bitmap.Bitmap, bool) {
	if e, ok := s.entries[k]; ok && e.stats.NullCount > 0 {
		return nil, false
	}
	return s.fetch(k, n, now)
}

// chargeLookup bills an index hit as an in-memory bitmap read.
func (s *SmartIndex) chargeLookup(ctx context.Context, n int) {
	if s.opt.Model == nil {
		return
	}
	if b := storage.BillFrom(ctx); b != nil {
		b.ChargeRead(s.opt.Model, sim.DeviceMemory, int64(n/8+1))
	}
}

// fetch returns a live entry's dense bitmap, refreshing recency.
func (s *SmartIndex) fetch(k string, n int, now time.Time) (*bitmap.Bitmap, bool) {
	e, ok := s.entries[k]
	if !ok {
		return nil, false
	}
	if s.expired(e, now) {
		s.drop(e)
		s.evTTL.Inc()
		return nil, false
	}
	if e.numRows != n {
		// Data changed shape under the same path; invalidate.
		s.drop(e)
		return nil, false
	}
	e.lastUse = now
	s.lru.MoveToFront(e.elem)
	if e.dense != nil {
		return e.dense, true
	}
	dense, err := e.packed.Decompress()
	if err != nil {
		s.drop(e)
		return nil, false
	}
	return dense, true
}

// rangeAnswer scans the block+column's entries for range metadata proving
// the atom matches all rows (min/max within the predicate and no NULLs).
// The all-false case is already handled by the executor's stats pruning.
func (s *SmartIndex) rangeAnswer(blockID string, a plan.Atom, n int, now time.Time) (*bitmap.Bitmap, bool) {
	if a.Negated || a.Op == sqlparser.OpContains || a.Op == sqlparser.OpNe {
		return nil, false
	}
	prefix := blockID + "|" + a.Col + " "
	for k, e := range s.entries {
		if !strings.HasPrefix(k, prefix) || s.expired(e, now) || e.numRows != n {
			continue
		}
		if e.stats.NullCount > 0 || e.stats.Min.IsNull() {
			continue
		}
		if atomAlwaysTrue(a, e.stats) {
			return bitmap.NewFull(n), true
		}
	}
	return nil, false
}

// atomAlwaysTrue reports whether stats prove every non-null row satisfies
// the atom (and NullCount is zero, checked by the caller).
func atomAlwaysTrue(a plan.Atom, st colstore.Stats) bool {
	cmpMin, errMin := types.Compare(a.Val, st.Min)
	cmpMax, errMax := types.Compare(a.Val, st.Max)
	if errMin != nil || errMax != nil {
		return false
	}
	switch a.Op {
	case sqlparser.OpGt:
		return cmpMin < 0 // val < min: all rows above val
	case sqlparser.OpGe:
		return cmpMin <= 0
	case sqlparser.OpLt:
		return cmpMax > 0
	case sqlparser.OpLe:
		return cmpMax >= 0
	case sqlparser.OpEq:
		return cmpMin == 0 && cmpMax == 0 // constant column equal to val
	default:
		return false
	}
}

// Store implements exec.IndexSource: it caches the positive-form result for
// the (block, atom) pair.
func (s *SmartIndex) Store(blockID string, a plan.Atom, bm *bitmap.Bitmap, stats colstore.Stats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key(blockID, a)
	now := s.opt.Now()
	if old, ok := s.entries[k]; ok {
		s.drop(old)
	}
	e := &entry{key: k, numRows: bm.Len(), stats: stats, created: now, lastUse: now}
	if s.opt.Compress {
		e.packed = bitmap.Compress(bm)
		e.size = int64(e.packed.SizeBytes() + len(k) + 96)
	} else {
		e.dense = bm.Clone()
		e.size = int64(e.dense.SizeBytes() + len(k) + 96)
	}
	if s.prefixPinned(k) || s.pinAtoms[a.Key()] {
		e.pinned = true
	}
	// Never admit an entry bigger than the whole budget.
	if s.opt.MemoryBudget > 0 && e.size > s.opt.MemoryBudget {
		return
	}
	e.elem = s.lru.PushFront(e)
	s.entries[k] = e
	s.bytes += e.size
	s.stored.Inc()
	s.enforceBudget()
}

// enforceBudget evicts least-recently-used entries (unpinned first) until
// the budget holds. Caller holds s.mu.
func (s *SmartIndex) enforceBudget() {
	if s.opt.MemoryBudget <= 0 {
		return
	}
	for pass := 0; pass < 2 && s.bytes > s.opt.MemoryBudget; pass++ {
		allowPinned := pass == 1
		for el := s.lru.Back(); el != nil && s.bytes > s.opt.MemoryBudget; {
			prev := el.Prev()
			e := el.Value.(*entry)
			if e.pinned && !allowPinned {
				el = prev
				continue
			}
			s.drop(e)
			s.evLRU.Inc()
			el = prev
		}
	}
}

// Sweep removes expired entries eagerly; the leaf runs it periodically.
func (s *SmartIndex) Sweep() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opt.Now()
	removed := 0
	for _, e := range s.entries {
		if s.expired(e, now) {
			s.drop(e)
			s.evTTL.Inc()
			removed++
		}
	}
	return removed
}

// expired applies the TTL; pinned entries never expire by time (paper:
// "indices with preferences can remain in the memory when their TTL expire
// if the cache memory is not full").
func (s *SmartIndex) expired(e *entry, now time.Time) bool {
	if e.pinned {
		return false
	}
	return now.Sub(e.created) > s.opt.TTL
}

// drop removes an entry. Caller holds s.mu.
func (s *SmartIndex) drop(e *entry) {
	delete(s.entries, e.key)
	if e.elem != nil {
		s.lru.Remove(e.elem)
		e.elem = nil
	}
	s.bytes -= e.size
}

// Invalidate removes every entry whose block id starts with prefix (data
// refresh for a partition or table).
func (s *SmartIndex) Invalidate(prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for k, e := range s.entries {
		if strings.HasPrefix(k, prefix) {
			s.drop(e)
			removed++
		}
	}
	return removed
}

// Stats returns a snapshot of the counters.
func (s *SmartIndex) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:        s.hits.Value(),
		DerivedHits: s.derived.Value(),
		Misses:      s.misses.Value(),
		Stored:      s.stored.Value(),
		EvictedLRU:  s.evLRU.Value(),
		EvictedTTL:  s.evTTL.Value(),
		Bytes:       s.bytes,
		Entries:     int64(len(s.entries)),
	}
}

// IndexLoad reports the index's heartbeat gauges: cached bitmap count and
// memory bytes vs. budget. It implements cluster.IndexLoadReporter without
// importing the cluster package.
func (s *SmartIndex) IndexLoad() (entries, bytes, budget int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.entries)), s.bytes, s.opt.MemoryBudget
}

// RegisterMetrics publishes the index's counters into a central registry
// under the given name prefix (e.g. "leaf0.index.").
func (s *SmartIndex) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Register(prefix+"hits", &s.hits)
	reg.Register(prefix+"derived", &s.derived)
	reg.Register(prefix+"misses", &s.misses)
	reg.Register(prefix+"stored", &s.stored)
	reg.Register(prefix+"evicted_lru", &s.evLRU)
	reg.Register(prefix+"evicted_ttl", &s.evTTL)
}

// ResetCounters zeroes hit/miss counters (between benchmark phases) while
// keeping cached entries.
func (s *SmartIndex) ResetCounters() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits = metrics.Counter{}
	s.derived = metrics.Counter{}
	s.misses = metrics.Counter{}
	s.stored = metrics.Counter{}
	s.evLRU = metrics.Counter{}
	s.evTTL = metrics.Counter{}
}
