// Package core implements SmartIndex, the paper's primary contribution
// (§IV-C): an adaptive index that caches the evaluation result of each query
// predicate over each data block as a 0-1 vector in leaf-server memory.
// Later queries that reuse a predicate (the query-similarity pattern of
// §IV-A) skip both the data scan and the predicate evaluation; composed
// predicates are answered by bit operations over cached vectors (Fig. 7).
//
// Entries follow the paper's index schema (Fig. 6): block id, the
// op/colname/colvalue condition key, a compression flag, and range metadata.
// Management follows §IV-C2: a memory budget with LRU eviction, a
// time-to-live (72 h by default), and user preferences that can pin entries
// past their TTL while memory lasts.
//
// On top of the paper's uniform LRU the manager runs a skew-aware tier
// split ("Exploiting Data Skew for Improved Query Performance"): a
// space-saving sketch tracks predicate-atom heat across lookups, entries
// for guaranteed-heavy atoms are auto-pinned in a hot tier laid out in
// cache-line-striped form with pre-materialized negations ("Fast Query
// Processing by Distributing an Index over CPU Caches"), and the hot tier's
// budget share follows the observed heavy-hitter mass so a near-uniform
// workload degenerates back to plain LRU.
package core

import (
	"container/list"
	"context"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/bitmap"
	"repro/internal/colstore"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/types"
)

// DefaultTTL is the paper's index time-to-live ("set to 72 hours based on
// our experiences").
const DefaultTTL = 72 * time.Hour

// DefaultDecayInterval is the number of sketch touches between heat decay
// and tier rebalance cycles.
const DefaultDecayInterval = 4096

// Options configure a SmartIndex manager.
type Options struct {
	// MemoryBudget caps resident index bytes; <=0 means unlimited.
	MemoryBudget int64
	// TTL evicts entries older than this; <=0 uses DefaultTTL.
	TTL time.Duration
	// Compress parks entries in RLE form (the paper: "Feisu can compress
	// the index to improve memory efficiency").
	Compress bool
	// DisableDerivation turns off complement/range derived answers
	// (ablation of the Fig. 7 rewriting).
	DisableDerivation bool
	// HeavyHitters sizes the space-saving heat sketch (counters per leaf);
	// <=0 disables heat-aware management entirely — budget behavior is then
	// exactly the uniform LRU of §IV-C2.
	HeavyHitters int
	// HotShare caps the fraction of MemoryBudget the hot tier may claim
	// (scaled further by the observed heavy-hitter mass); <=0 defaults to
	// 0.5, values above 1 clamp to 1.
	HotShare float64
	// DecayInterval is the number of sketch touches between decay/rebalance
	// cycles; <=0 uses DefaultDecayInterval.
	DecayInterval int
	// Model prices index lookups as in-memory reads; nil disables cost
	// accounting.
	Model *sim.CostModel
	// Now is the clock (tests inject a fake one).
	Now func() time.Time
}

// Stats reports the manager's counters.
type Stats struct {
	Hits        int64 // exact-entry hits
	DerivedHits int64 // answered via complement entry, negation, or range metadata
	Misses      int64
	Stored      int64
	EvictedLRU  int64 // total budget evictions (hot + cold)
	EvictedTTL  int64
	Bytes       int64
	Entries     int64

	// Heat-tier counters (zero when HeavyHitters is disabled).
	HotEntries     int64 // entries currently in the hot tier
	HotBytes       int64 // resident bytes of the hot tier
	HotBudget      int64 // current heat-proportional hot-tier cap (0 = uncapped/none)
	Promoted       int64 // cold→hot transitions
	Demoted        int64 // hot→cold transitions
	EvictedLRUHot  int64 // budget evictions attributed to the hot tier
	EvictedLRUCold int64 // budget evictions attributed to the cold tier
	StripedHits    int64 // lookups served in striped form (fast kernel path)
}

// SmartIndex is a leaf server's index manager. It implements
// exec.IndexSource (and exec.StripedSource when heat is enabled).
type SmartIndex struct {
	opt Options

	mu       sync.Mutex
	entries  map[string]*entry
	cold     *list.List // plain-LRU tier; front = most recent
	hot      *list.List // heat-pinned striped tier; front = most recent
	bytes    int64
	hotBytes int64
	pins     []string        // pinned key prefixes (user preferences)
	pinAtoms map[string]bool // pinned atom keys, any block

	// Heat model (nil sketch = disabled).
	sketch     *SpaceSaving
	hotKeys    map[string]bool // atom keys currently classified hot
	hotBudget  int64           // heat-proportional cap, valid when MemoryBudget > 0
	sinceDecay int

	hits, derived, misses  metrics.Counter
	stored, evLRU, evTTL   metrics.Counter
	promoted, demoted      metrics.Counter
	evHot, evCold, striped metrics.Counter
}

// entry is one cached predicate-evaluation result. Cold entries hold the
// dense or RLE form; hot entries hold the cache-line-striped form plus the
// pre-materialized negation (NULL-free columns only).
type entry struct {
	key     string // blockID + "|" + atom.Key()
	atomKey string // positive atom key, shared across blocks — the heat key
	dense   *bitmap.Bitmap
	packed  *bitmap.Compressed
	striped *bitmap.Striped // hot tier: positive-form striped layout
	neg     *bitmap.Striped // hot tier: pre-materialized negation (nil if column has NULLs)
	numRows int
	// stats is the column's block-level range metadata ("range" in the
	// paper's index schema) used for derived answers.
	stats   colstore.Stats
	created time.Time
	lastUse time.Time
	size    int64
	elem    *list.Element
	pinned  bool
	hot     bool
}

// New returns a SmartIndex with the given options.
func New(opt Options) *SmartIndex {
	if opt.TTL <= 0 {
		opt.TTL = DefaultTTL
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	s := &SmartIndex{opt: opt, entries: make(map[string]*entry), cold: list.New(), hot: list.New(), pinAtoms: make(map[string]bool)}
	if opt.HeavyHitters > 0 {
		if s.opt.HotShare <= 0 {
			s.opt.HotShare = 0.5
		}
		if s.opt.HotShare > 1 {
			s.opt.HotShare = 1
		}
		if s.opt.DecayInterval <= 0 {
			s.opt.DecayInterval = DefaultDecayInterval
		}
		s.sketch = NewSpaceSaving(opt.HeavyHitters)
		s.hotKeys = make(map[string]bool)
	}
	return s
}

func key(blockID string, a plan.Atom) string {
	return blockID + "|" + atomHeatKey(a)
}

// atomHeatKey is the positive-form atom key: the per-atom identity used for
// both entry keys (with a block prefix) and sketch heat accounting (without).
func atomHeatKey(a plan.Atom) string {
	a.Negated = false
	return a.Key()
}

// Pin registers a key-prefix preference: matching entries survive TTL
// expiry while memory lasts and are evicted last (paper §IV-C2: "interfaces
// for users to set preferences and retire strategies on indices").
func (s *SmartIndex) Pin(prefix string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pins = append(s.pins, prefix)
	for _, e := range s.entries {
		if strings.HasPrefix(e.key, prefix) {
			e.pinned = true
		}
	}
}

// PinAtom pins every current and future entry for the predicate atom
// across all blocks — the private-index personalization driven by
// client-side query-history collection (paper §III-C: "collection on the
// client side is used for SmartIndex to build private index for specific
// users or user groups").
func (s *SmartIndex) PinAtom(atomKey string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pinAtoms[atomKey] = true
	suffix := "|" + atomKey
	for _, e := range s.entries {
		if strings.HasSuffix(e.key, suffix) {
			e.pinned = true
		}
	}
}

// UnpinAtom removes an atom preference; existing entries fall back to
// normal LRU/TTL management.
func (s *SmartIndex) UnpinAtom(atomKey string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pinAtoms, atomKey)
	suffix := "|" + atomKey
	for _, e := range s.entries {
		if strings.HasSuffix(e.key, suffix) {
			e.pinned = s.prefixPinned(e.key)
		}
	}
}

// prefixPinned reports whether a key matches a prefix pin. Caller holds mu.
func (s *SmartIndex) prefixPinned(key string) bool {
	for _, p := range s.pins {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	return false
}

// --- Heat model -----------------------------------------------------------

// heatWarmupMultiple delays hot classification until the sketch has seen at
// least this many touches per counter. With a tiny observed total every
// counter trivially clears the N/k bar (N/k rounds to 1), so an unwarmed
// sketch would promote the first k atoms it meets — on a uniform workload
// that wastes budget on striped layouts nothing will reuse. After warmup the
// guaranteed-heavy test has enough mass behind it to separate skew from
// noise; decay halves counts and total together, so a warmed sketch never
// re-enters warmup under steady traffic.
const heatWarmupMultiple = 4

// heatReady reports whether the sketch has warmed up enough for hot
// classification to be meaningful. Caller holds s.mu.
func (s *SmartIndex) heatReady() bool {
	return s.sketch != nil && s.sketch.Total() >= int64(heatWarmupMultiple*s.opt.HeavyHitters)
}

// touchHeat records one logical lookup of an atom in the sketch, upgrades
// the atom to hot the moment its guaranteed frequency clears the N/k bar,
// and runs the decay/rebalance cycle every DecayInterval touches. Caller
// holds s.mu. Exactly one touch happens per logical lookup: LookupStriped
// touches only when it answers (its probe-miss falls back to Lookup, which
// touches on every path).
func (s *SmartIndex) touchHeat(atomKey string) {
	if s.sketch == nil {
		return
	}
	s.sketch.Touch(atomKey)
	if !s.hotKeys[atomKey] && s.heatReady() {
		if c, e, ok := s.sketch.Estimate(atomKey); ok && c-e >= s.sketch.Threshold() {
			s.hotKeys[atomKey] = true
			s.recomputeHotBudget()
		}
	}
	s.sinceDecay++
	if s.sinceDecay >= s.opt.DecayInterval {
		s.sinceDecay = 0
		s.sketch.Decay()
		s.rebalance()
	}
}

// recomputeHotBudget sets the hot tier's cap to
// MemoryBudget × HotShare × guaranteedHeavyMass: under a near-uniform
// workload no counter clears the guaranteed bar, the mass is ~0 and the
// hot tier claims nothing — the index degenerates to the uniform LRU.
// Caller holds s.mu.
func (s *SmartIndex) recomputeHotBudget() {
	if s.opt.MemoryBudget <= 0 {
		return
	}
	total := s.sketch.Total()
	if total == 0 || !s.heatReady() {
		s.hotBudget = 0
		return
	}
	var mass int64
	for _, h := range s.sketch.GuaranteedHeavy() {
		mass += h.Count - h.Err
	}
	frac := float64(mass) / float64(total)
	if frac > 1 {
		frac = 1
	}
	s.hotBudget = int64(s.opt.HotShare * frac * float64(s.opt.MemoryBudget))
}

// hotCap is the current hot-tier byte limit. Caller holds s.mu.
func (s *SmartIndex) hotCap() int64 {
	if s.opt.MemoryBudget <= 0 {
		return math.MaxInt64
	}
	return s.hotBudget
}

// rebalance refreshes the hot classification after a decay: the hot key
// set is recomputed from the guaranteed-heavy survivors, entries whose atom
// cooled off are demoted back to the cold LRU, and the hot tier is shrunk
// to its (possibly smaller) heat-proportional cap. Caller holds s.mu.
func (s *SmartIndex) rebalance() {
	s.hotKeys = make(map[string]bool)
	if s.heatReady() {
		for _, h := range s.sketch.GuaranteedHeavy() {
			s.hotKeys[h.Key] = true
		}
	}
	s.recomputeHotBudget()
	for el := s.hot.Back(); el != nil; {
		prev := el.Prev()
		if e := el.Value.(*entry); !s.hotKeys[e.atomKey] {
			s.demote(e)
		}
		el = prev
	}
	for s.hotBytes > s.hotCap() && s.hot.Len() > 0 {
		s.demote(s.hot.Back().Value.(*entry))
	}
	// Demotion restores the dense/RLE form, which can be larger than the
	// striped one; settle the global budget afterwards.
	s.enforceBudget(nil)
}

// stripedSize is a hot entry's accounted footprint.
func stripedSize(key string, pos, neg *bitmap.Striped) int64 {
	n := int64(pos.SizeBytes() + len(key) + 96)
	if neg != nil {
		n += int64(neg.SizeBytes())
	}
	return n
}

// promote moves a cold entry into the hot tier: the bitmap is re-laid-out
// in cache-line-striped form, its negation is pre-materialized when the
// column is NULL-free (bit-NOT soundness, same gate as the Fig. 7
// invertible path), and the entry becomes TTL-exempt. Promotion is
// budget-gated: it is skipped when the striped forms would overflow the hot
// cap, so cold-scan churn cannot thrash the hot tier. Caller holds s.mu.
func (s *SmartIndex) promote(e *entry) {
	dense, ok := s.coldDense(e)
	if !ok {
		return
	}
	pos := bitmap.Stripe(dense)
	var neg *bitmap.Striped
	if e.stats.NullCount == 0 {
		nd := dense.Clone()
		nd.Not()
		neg = bitmap.Stripe(nd)
	}
	size := stripedSize(e.key, pos, neg)
	if s.opt.MemoryBudget > 0 && (s.hotBytes+size > s.hotCap() || size > s.opt.MemoryBudget) {
		return
	}
	s.bytes += size - e.size
	s.cold.Remove(e.elem)
	e.dense, e.packed = nil, nil
	e.striped, e.neg = pos, neg
	e.size = size
	e.hot = true
	e.elem = s.hot.PushFront(e)
	s.hotBytes += size
	s.promoted.Inc()
	s.enforceBudget(e)
}

// demote returns a hot entry to the cold LRU in its dense/RLE form,
// dropping the striped layouts and the pre-materialized negation. Caller
// holds s.mu.
func (s *SmartIndex) demote(e *entry) {
	dense := e.striped.ToBitmap()
	s.hot.Remove(e.elem)
	s.hotBytes -= e.size
	s.bytes -= e.size
	e.striped, e.neg = nil, nil
	if s.opt.Compress {
		e.packed = bitmap.Compress(dense)
		e.size = int64(e.packed.SizeBytes() + len(e.key) + 96)
	} else {
		e.dense = dense
		e.size = int64(e.dense.SizeBytes() + len(e.key) + 96)
	}
	e.hot = false
	e.elem = s.cold.PushFront(e)
	s.bytes += e.size
	s.demoted.Inc()
}

// --- Lookup paths ---------------------------------------------------------

// Lookup implements exec.IndexSource. The returned bitmap is owned by the
// index and must not be mutated by the caller. It answers from an exact
// entry, from a complementary entry via bit-NOT (Fig. 7), or from range
// metadata when the stored stats prove an all-true result. A negated atom
// (NOT CONTAINS) is served by bit-NOT of its positive entry. Every bit-NOT
// derivation requires the block's column to be NULL-free: NULL rows
// satisfy neither a predicate nor its complement, so inverting a vector
// over a column with NULLs would wrongly select them — the stored range
// metadata carries the null count that gates this.
func (s *SmartIndex) Lookup(ctx context.Context, blockID string, a plan.Atom, n int) (*bitmap.Bitmap, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opt.Now()
	s.touchHeat(atomHeatKey(a))

	if a.Negated {
		if bm, ok := s.fetchNegation(key(blockID, a), n, now); ok {
			s.derived.Inc()
			trace.FromContext(ctx).Count("index.derived", 1)
			s.chargeLookup(ctx, n)
			return bm, true
		}
		s.misses.Inc()
		return nil, false
	}

	if bm, ok := s.fetch(key(blockID, a), n, now); ok {
		s.hits.Inc()
		s.chargeLookup(ctx, n)
		return bm, true
	}
	if s.opt.DisableDerivation {
		s.misses.Inc()
		return nil, false
	}
	// Complement derivation: an entry for the negated comparison answers
	// this atom via bit-NOT (e.g. cached "c > 5" serves "c <= 5").
	if comp, invertible := a.Op.Negate(); invertible {
		ca := a
		ca.Op = comp
		if bm, ok := s.fetchNegation(key(blockID, ca), n, now); ok {
			s.derived.Inc()
			trace.FromContext(ctx).Count("index.derived", 1)
			s.chargeLookup(ctx, n)
			return bm, true
		}
	}
	// Range metadata: any cached entry for the same block+column carries
	// the column's min/max; if they prove the atom all-true, answer
	// without a stored vector.
	if bm, ok := s.rangeAnswer(blockID, a, n, now); ok {
		s.derived.Inc()
		trace.FromContext(ctx).Count("index.derived", 1)
		s.chargeLookup(ctx, n)
		return bm, true
	}
	s.misses.Inc()
	return nil, false
}

// LookupStriped implements exec.StripedSource: the zero-copy fast path for
// hot entries. A negated atom is answered by the pre-materialized negation
// (nil when the column has NULLs — bit-NOT would be unsound, so the probe
// misses and the caller's Lookup fallback takes the scan path). A probe
// miss neither touches the sketch nor counts an index miss: the fallback
// Lookup accounts for the logical lookup.
func (s *SmartIndex) LookupStriped(ctx context.Context, blockID string, a plan.Atom, n int) (*bitmap.Striped, bool) {
	if s.sketch == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opt.Now()
	e, ok := s.fetchEntry(key(blockID, a), n, now)
	if !ok || !e.hot {
		return nil, false
	}
	out := e.striped
	if a.Negated {
		if e.neg == nil {
			return nil, false
		}
		out = e.neg
		s.derived.Inc()
		trace.FromContext(ctx).Count("index.derived", 1)
	} else {
		s.hits.Inc()
	}
	s.touchHeat(atomHeatKey(a))
	s.striped.Inc()
	s.chargeLookup(ctx, n)
	return out, true
}

// fetchNegation answers NOT(atom at key k): via the hot tier's
// pre-materialized negation, or by bit-NOT over the cold form when that is
// sound (NULL-free column). Caller holds s.mu.
func (s *SmartIndex) fetchNegation(k string, n int, now time.Time) (*bitmap.Bitmap, bool) {
	if e, ok := s.entries[k]; ok && e.stats.NullCount > 0 {
		return nil, false
	}
	e, ok := s.fetchEntry(k, n, now)
	if !ok {
		return nil, false
	}
	if e.hot && e.neg != nil {
		return e.neg.ToBitmap(), true
	}
	bm, ok := s.entryBitmap(e)
	if !ok {
		return nil, false
	}
	neg := bm.Clone()
	neg.Not()
	return neg, true
}

// chargeLookup bills an index hit as an in-memory bitmap read.
func (s *SmartIndex) chargeLookup(ctx context.Context, n int) {
	if s.opt.Model == nil {
		return
	}
	if b := storage.BillFrom(ctx); b != nil {
		b.ChargeRead(s.opt.Model, sim.DeviceMemory, int64(n/8+1))
	}
}

// fetchEntry returns the live entry for k, refreshing recency in its tier
// and promoting a cold entry whose atom is currently classified hot.
// Caller holds s.mu.
func (s *SmartIndex) fetchEntry(k string, n int, now time.Time) (*entry, bool) {
	e, ok := s.entries[k]
	if !ok {
		return nil, false
	}
	if s.expired(e, now) {
		s.drop(e)
		s.evTTL.Inc()
		return nil, false
	}
	if e.numRows != n {
		// Data changed shape under the same path; invalidate.
		s.drop(e)
		return nil, false
	}
	e.lastUse = now
	if e.hot {
		s.hot.MoveToFront(e.elem)
	} else {
		s.cold.MoveToFront(e.elem)
		if s.sketch != nil && s.hotKeys[e.atomKey] {
			s.promote(e)
		}
	}
	return e, true
}

// entryBitmap materializes an entry's positive-form dense bitmap. Caller
// holds s.mu.
func (s *SmartIndex) entryBitmap(e *entry) (*bitmap.Bitmap, bool) {
	if e.hot {
		return e.striped.ToBitmap(), true
	}
	return s.coldDense(e)
}

// coldDense returns a cold entry's dense form, decompressing if parked in
// RLE. Caller holds s.mu.
func (s *SmartIndex) coldDense(e *entry) (*bitmap.Bitmap, bool) {
	if e.dense != nil {
		return e.dense, true
	}
	dense, err := e.packed.Decompress()
	if err != nil {
		s.drop(e)
		return nil, false
	}
	return dense, true
}

// fetch returns a live entry's dense bitmap, refreshing recency.
func (s *SmartIndex) fetch(k string, n int, now time.Time) (*bitmap.Bitmap, bool) {
	e, ok := s.fetchEntry(k, n, now)
	if !ok {
		return nil, false
	}
	return s.entryBitmap(e)
}

// rangeAnswer scans the block+column's entries for range metadata proving
// the atom matches all rows (min/max within the predicate and no NULLs).
// The all-false case is already handled by the executor's stats pruning.
func (s *SmartIndex) rangeAnswer(blockID string, a plan.Atom, n int, now time.Time) (*bitmap.Bitmap, bool) {
	if a.Negated || a.Op == sqlparser.OpContains || a.Op == sqlparser.OpNe {
		return nil, false
	}
	prefix := blockID + "|" + a.Col + " "
	for k, e := range s.entries {
		if !strings.HasPrefix(k, prefix) || s.expired(e, now) || e.numRows != n {
			continue
		}
		if e.stats.NullCount > 0 || e.stats.Min.IsNull() {
			continue
		}
		if atomAlwaysTrue(a, e.stats) {
			return bitmap.NewFull(n), true
		}
	}
	return nil, false
}

// atomAlwaysTrue reports whether stats prove every non-null row satisfies
// the atom (and NullCount is zero, checked by the caller).
func atomAlwaysTrue(a plan.Atom, st colstore.Stats) bool {
	cmpMin, errMin := types.Compare(a.Val, st.Min)
	cmpMax, errMax := types.Compare(a.Val, st.Max)
	if errMin != nil || errMax != nil {
		return false
	}
	switch a.Op {
	case sqlparser.OpGt:
		return cmpMin < 0 // val < min: all rows above val
	case sqlparser.OpGe:
		return cmpMin <= 0
	case sqlparser.OpLt:
		return cmpMax > 0
	case sqlparser.OpLe:
		return cmpMax >= 0
	case sqlparser.OpEq:
		return cmpMin == 0 && cmpMax == 0 // constant column equal to val
	default:
		return false
	}
}

// Store implements exec.IndexSource: it caches the positive-form result for
// the (block, atom) pair. An atom currently classified hot is stored
// straight into the hot tier (striped, negation pre-materialized) when the
// hot budget allows.
func (s *SmartIndex) Store(blockID string, a plan.Atom, bm *bitmap.Bitmap, stats colstore.Stats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key(blockID, a)
	now := s.opt.Now()
	if old, ok := s.entries[k]; ok {
		s.drop(old)
	}
	e := &entry{key: k, atomKey: atomHeatKey(a), numRows: bm.Len(), stats: stats, created: now, lastUse: now}
	if s.sketch != nil && s.hotKeys[e.atomKey] {
		pos := bitmap.Stripe(bm)
		var neg *bitmap.Striped
		if stats.NullCount == 0 {
			nd := bm.Clone()
			nd.Not()
			neg = bitmap.Stripe(nd)
		}
		if size := stripedSize(k, pos, neg); s.opt.MemoryBudget <= 0 || s.hotBytes+size <= s.hotCap() {
			e.striped, e.neg, e.size, e.hot = pos, neg, size, true
		}
	}
	if !e.hot {
		if s.opt.Compress {
			e.packed = bitmap.Compress(bm)
			e.size = int64(e.packed.SizeBytes() + len(k) + 96)
		} else {
			e.dense = bm.Clone()
			e.size = int64(e.dense.SizeBytes() + len(k) + 96)
		}
	}
	if s.prefixPinned(k) || s.pinAtoms[e.atomKey] {
		e.pinned = true
	}
	// Never admit an entry bigger than the whole budget.
	if s.opt.MemoryBudget > 0 && e.size > s.opt.MemoryBudget {
		return
	}
	if e.hot {
		e.elem = s.hot.PushFront(e)
		s.hotBytes += e.size
	} else {
		e.elem = s.cold.PushFront(e)
	}
	s.entries[k] = e
	s.bytes += e.size
	s.stored.Inc()
	if e.hot {
		// A direct-to-hot store counts as a promotion: Promoted tracks every
		// cold-path→hot-tier transition.
		s.promoted.Inc()
	}
	s.enforceBudget(e)
}

// enforceBudget evicts least-recently-used entries until the budget holds:
// cold unpinned first, then cold pinned, then the hot tier. The entry just
// stored or promoted (except) is never evicted while any other candidate
// exists — a store under a full budget must not churn out its own entry
// before its first lookup — and is only dropped as a true last resort.
// Eviction attribution is per-tier (EvictedLRUHot/EvictedLRUCold always sum
// to EvictedLRU). Caller holds s.mu.
func (s *SmartIndex) enforceBudget(except *entry) {
	if s.opt.MemoryBudget <= 0 {
		return
	}
	evictFrom := func(l *list.List, allowPinned bool, tier *metrics.Counter) {
		for el := l.Back(); el != nil && s.bytes > s.opt.MemoryBudget; {
			prev := el.Prev()
			e := el.Value.(*entry)
			if (e.pinned && !allowPinned) || e == except {
				el = prev
				continue
			}
			s.drop(e)
			s.evLRU.Inc()
			tier.Inc()
			el = prev
		}
	}
	evictFrom(s.cold, false, &s.evCold)
	evictFrom(s.cold, true, &s.evCold)
	evictFrom(s.hot, true, &s.evHot)
	if s.bytes > s.opt.MemoryBudget && except != nil && except.elem != nil {
		tier := &s.evCold
		if except.hot {
			tier = &s.evHot
		}
		s.drop(except)
		s.evLRU.Inc()
		tier.Inc()
	}
}

// Sweep removes expired entries eagerly; the leaf runs it periodically.
func (s *SmartIndex) Sweep() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opt.Now()
	removed := 0
	for _, e := range s.entries {
		if s.expired(e, now) {
			s.drop(e)
			s.evTTL.Inc()
			removed++
		}
	}
	return removed
}

// expired applies the TTL; pinned entries never expire by time (paper:
// "indices with preferences can remain in the memory when their TTL expire
// if the cache memory is not full"), and hot entries are auto-pinned while
// their atom stays heavy (demotion restores normal aging).
func (s *SmartIndex) expired(e *entry, now time.Time) bool {
	if e.pinned || e.hot {
		return false
	}
	return now.Sub(e.created) > s.opt.TTL
}

// drop removes an entry from its tier. Caller holds s.mu.
func (s *SmartIndex) drop(e *entry) {
	delete(s.entries, e.key)
	if e.elem != nil {
		if e.hot {
			s.hot.Remove(e.elem)
			s.hotBytes -= e.size
		} else {
			s.cold.Remove(e.elem)
		}
		e.elem = nil
	}
	s.bytes -= e.size
}

// Invalidate removes every entry whose block id starts with prefix (data
// refresh for a partition or table).
func (s *SmartIndex) Invalidate(prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for k, e := range s.entries {
		if strings.HasPrefix(k, prefix) {
			s.drop(e)
			removed++
		}
	}
	return removed
}

// Stats returns a snapshot of the counters.
func (s *SmartIndex) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Hits:        s.hits.Value(),
		DerivedHits: s.derived.Value(),
		Misses:      s.misses.Value(),
		Stored:      s.stored.Value(),
		EvictedLRU:  s.evLRU.Value(),
		EvictedTTL:  s.evTTL.Value(),
		Bytes:       s.bytes,
		Entries:     int64(len(s.entries)),

		HotEntries:     int64(s.hot.Len()),
		HotBytes:       s.hotBytes,
		Promoted:       s.promoted.Value(),
		Demoted:        s.demoted.Value(),
		EvictedLRUHot:  s.evHot.Value(),
		EvictedLRUCold: s.evCold.Value(),
		StripedHits:    s.striped.Value(),
	}
	if s.opt.MemoryBudget > 0 {
		st.HotBudget = s.hotBudget
	}
	return st
}

// IndexLoad reports the index's heartbeat gauges: cached bitmap count and
// memory bytes vs. budget. It implements cluster.IndexLoadReporter without
// importing the cluster package.
func (s *SmartIndex) IndexLoad() (entries, bytes, budget int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.entries)), s.bytes, s.opt.MemoryBudget
}

// HeatLoad reports the hot tier's heartbeat gauges: hot entry count, hot
// resident bytes, and the current heat-proportional budget. It implements
// cluster.HeatLoadReporter without importing the cluster package.
func (s *SmartIndex) HeatLoad() (hotEntries, hotBytes, hotBudget int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := int64(0)
	if s.opt.MemoryBudget > 0 {
		b = s.hotBudget
	}
	return int64(s.hot.Len()), s.hotBytes, b
}

// RegisterMetrics publishes the index's counters into a central registry
// under the given name prefix (e.g. "leaf0.index.").
func (s *SmartIndex) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Register(prefix+"hits", &s.hits)
	reg.Register(prefix+"derived", &s.derived)
	reg.Register(prefix+"misses", &s.misses)
	reg.Register(prefix+"stored", &s.stored)
	reg.Register(prefix+"evicted_lru", &s.evLRU)
	reg.Register(prefix+"evicted_ttl", &s.evTTL)
	reg.Register(prefix+"promoted", &s.promoted)
	reg.Register(prefix+"demoted", &s.demoted)
	reg.Register(prefix+"evicted_lru_hot", &s.evHot)
	reg.Register(prefix+"evicted_lru_cold", &s.evCold)
	reg.Register(prefix+"striped_hits", &s.striped)
}

// ResetCounters zeroes hit/miss counters (between benchmark phases) while
// keeping cached entries.
func (s *SmartIndex) ResetCounters() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits = metrics.Counter{}
	s.derived = metrics.Counter{}
	s.misses = metrics.Counter{}
	s.stored = metrics.Counter{}
	s.evLRU = metrics.Counter{}
	s.evTTL = metrics.Counter{}
	s.promoted = metrics.Counter{}
	s.demoted = metrics.Counter{}
	s.evHot = metrics.Counter{}
	s.evCold = metrics.Counter{}
	s.striped = metrics.Counter{}
}
