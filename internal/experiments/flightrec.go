package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	feisu "repro"
	"repro/internal/workload"
)

// FlightrecShort trims the flight-recorder overhead run to a smoke-sized
// stream (verify.sh) and skips the acceptance gate.
var FlightrecShort bool

// flightrecQueries generates a mixed stream over T1 — selective projections
// and aggregations with varied literals — so every query plans, schedules,
// dispatches and collects real tasks and the recorder journals the full
// per-query event chain (no result cache is configured, so nothing
// short-circuits).
func flightrecQueries(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		threshold := 2 + rng.Intn(10)
		if i%3 == 0 {
			out = append(out, fmt.Sprintf("SELECT COUNT(*), SUM(clicks) FROM T1 WHERE clicks > %d", threshold))
		} else {
			out = append(out, fmt.Sprintf("SELECT uid, clicks FROM T1 WHERE clicks > %d AND dwell <= %d", threshold, 60+rng.Intn(120)))
		}
	}
	return out
}

// Flightrec measures the always-on flight recorder's cost: the same query
// stream runs with the recorder disabled (EventLogCapacity -1) and enabled
// (default ring), interleaved over several rounds, and the minimum wall
// time per arm is compared. Min-over-rounds discards scheduler and GC noise
// — the remaining delta is the recorder's real per-event cost. The
// acceptance gate: overhead below 2% of the recorder-off wall time (with a
// 2ms absolute allowance for timer granularity on very fast short runs) —
// the ISSUE's requirement that observability is cheap enough to never turn
// off.
func Flightrec(scale Scale) (*Report, error) {
	nq := scale.Queries
	rounds := 5
	if FlightrecShort {
		nq = min(nq, 40)
		scale.Partitions = min(scale.Partitions, 2)
		rounds = 2
	}
	queries := flightrecQueries(nq, 9257)

	type arm struct {
		mode            string
		minWall         time.Duration
		totalSim        time.Duration
		events, dropped int64
	}
	arms := map[bool]*arm{
		false: {mode: "off", minWall: time.Duration(1<<62 - 1)},
		true:  {mode: "on", minWall: time.Duration(1<<62 - 1)},
	}

	runArm := func(record bool) error {
		cfg := feisu.Config{
			Leaves: scale.Leaves,
			Index:  feisu.IndexNone,
		}
		if !record {
			cfg.EventLogCapacity = -1
		}
		sys, err := feisu.New(cfg)
		if err != nil {
			return err
		}
		defer sys.Close()
		spec := workload.T1Spec()
		spec.PathPrefix = "/warm/t1" // in-memory: recorder cost is not hidden behind I/O waits
		spec.Partitions = scale.Partitions
		spec.RowsPerPart = maxInt(scale.DataRowsPerPartition, 2048)
		spec.Fields = 10
		ctx := context.Background()
		meta, err := workload.Generate(ctx, sys.Router(), spec)
		if err == nil {
			err = sys.RegisterTable(ctx, meta)
		}
		if err != nil {
			return err
		}

		var totalSim time.Duration
		start := time.Now()
		for _, q := range queries {
			_, stats, qErr := sys.QueryStats(ctx, q)
			if qErr != nil {
				return fmt.Errorf("flightrec: record=%v %q: %w", record, q, qErr)
			}
			totalSim += stats.SimTime
		}
		wall := time.Since(start)

		a := arms[record]
		if wall < a.minWall {
			a.minWall = wall
		}
		a.totalSim = totalSim
		if rec := sys.Events(); rec != nil {
			a.events, a.dropped = int64(rec.Total()), int64(rec.Dropped())
		}
		return nil
	}

	for r := 0; r < rounds; r++ {
		// Interleave arms so drift (thermal, background load) hits both.
		for _, record := range []bool{false, true} {
			if err := runArm(record); err != nil {
				return nil, err
			}
		}
	}

	off, on := arms[false], arms[true]
	delta := on.minWall - off.minWall
	overhead := float64(delta) / float64(maxDur(off.minWall, time.Microsecond))
	perEvent := time.Duration(0)
	if on.events > 0 && delta > 0 {
		perEvent = delta / time.Duration(on.events)
	}

	rep := &Report{
		ID:    "flightrec",
		Title: "Flight recorder overhead: identical stream, recorder off vs on",
		Headers: []string{"Recorder", "Queries", "Min wall (ms)", "Total sim (ms)",
			"Events", "Dropped"},
	}
	ms := func(dur time.Duration) string { return f2(float64(dur) / float64(time.Millisecond)) }
	for _, a := range []*arm{off, on} {
		rep.Rows = append(rep.Rows, []string{
			a.mode, d(int64(nq)), ms(a.minWall), ms(a.totalSim), d(a.events), d(a.dropped),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("min wall over %d interleaved rounds per arm; delta %s = %.2f%% of recorder-off wall",
			rounds, delta.Round(time.Microsecond), overhead*100),
		fmt.Sprintf("%d events journaled per run (~%s per event); ring capacity default, %d overwritten",
			on.events, perEvent.Round(time.Nanosecond), on.dropped),
	)
	if !FlightrecShort {
		if on.events == 0 {
			return rep, fmt.Errorf("flightrec: recorder-on arm journaled no events")
		}
		if overhead >= 0.02 && delta >= 2*time.Millisecond {
			return rep, fmt.Errorf("flightrec: recorder overhead %.2f%% (delta %s) exceeds the 2%% gate",
				overhead*100, delta)
		}
	}
	return rep, nil
}
