package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	feisu "repro"
	"repro/internal/workload"
)

// RescacheShort trims the result-cache run to a smoke-sized stream
// (verify.sh) and skips the acceptance gate.
var RescacheShort bool

// rescacheQueries generates a repeated-shape stream over the T1 fact table:
// cache-eligible projections (`SELECT uid, clicks ... WHERE clicks > X`) and
// aggregations, with literals drawn from a Zipf distribution so a few query
// texts dominate — the production regime the paper motivates Feisu with
// (dashboards and report jobs re-issuing near-identical queries). Low
// thresholds subsume high ones, so the stream exercises the exact-hit path,
// the subsumption path and true misses.
func rescacheQueries(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	// s=1.4 over 10 values: rank 0 carries ~45% of draws.
	zipf := rand.NewZipf(rng, 1.4, 1, 9)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		// clicks is Intn(20): thresholds 2..11 all select rows.
		threshold := 2 + int(zipf.Uint64())
		if rng.Intn(4) == 0 {
			// A quarter of the stream is aggregations: exact-hit eligible
			// only (no subsumption for grouped shapes).
			out = append(out, fmt.Sprintf("SELECT COUNT(*), SUM(clicks) FROM T1 WHERE clicks > %d", threshold))
		} else {
			out = append(out, fmt.Sprintf("SELECT uid, clicks FROM T1 WHERE clicks > %d", threshold))
		}
	}
	return out
}

// Rescache measures the semantic result cache: the same Zipf-repeated query
// stream runs once with the cache off and once with the cache plus
// cache-affinity placement on, over warm in-memory data (so the comparison
// isolates execution cost, not storage tier). Reported per arm: total and
// mean simulated time, wall time, and the cache's hit/subsumed/miss
// counters. The acceptance shape: the cache arm's total simulated time is
// below the no-cache arm's, with a non-zero hit count — repeated shapes stop
// paying for execution at all.
func Rescache(scale Scale) (*Report, error) {
	nq := scale.Queries
	if RescacheShort {
		nq = min(nq, 60)
		scale.Partitions = min(scale.Partitions, 2)
	}
	queries := rescacheQueries(nq, 4157)

	type arm struct {
		mode               string
		totalSim, meanSim  time.Duration
		wall               time.Duration
		hits, subs, misses int64
	}
	var arms []arm

	for _, cached := range []bool{false, true} {
		cfg := feisu.Config{
			Leaves: scale.Leaves,
			Index:  feisu.IndexNone,
		}
		mode := "off"
		if cached {
			mode = "on"
			cfg.ResultCacheBytes = 8 << 20
			cfg.CacheAffinity = true
		}
		sys, err := feisu.New(cfg)
		if err != nil {
			return nil, err
		}
		spec := workload.T1Spec()
		spec.PathPrefix = "/warm/t1" // in-memory: execution cost dominates
		spec.Partitions = scale.Partitions
		spec.RowsPerPart = maxInt(scale.DataRowsPerPartition, 2048)
		spec.Fields = 10
		ctx := context.Background()
		meta, err := workload.Generate(ctx, sys.Router(), spec)
		if err == nil {
			err = sys.RegisterTable(ctx, meta)
		}
		if err != nil {
			sys.Close()
			return nil, err
		}

		var totalSim time.Duration
		start := time.Now()
		for _, q := range queries {
			_, stats, qErr := sys.QueryStats(ctx, q)
			if qErr != nil {
				sys.Close()
				return nil, fmt.Errorf("rescache: mode=%s %q: %w", mode, q, qErr)
			}
			totalSim += stats.SimTime
		}
		wall := time.Since(start)
		a := arm{
			mode:     mode,
			totalSim: totalSim,
			meanSim:  totalSim / time.Duration(len(queries)),
			wall:     wall,
		}
		if rc := sys.ResultCache(); rc != nil {
			s := rc.Snapshot()
			a.hits, a.subs, a.misses = s.Hits, s.SubsumedHits, s.Misses
		}
		sys.Close()
		arms = append(arms, a)
	}

	rep := &Report{
		ID:    "rescache",
		Title: "Semantic result cache: repeated-shape stream, cache off vs on",
		Headers: []string{"Cache", "Queries", "Total sim (ms)", "Mean sim (ms)",
			"Wall (ms)", "Hits", "Subsumed", "Misses"},
	}
	ms := func(dur time.Duration) string { return f2(float64(dur) / float64(time.Millisecond)) }
	for _, a := range arms {
		rep.Rows = append(rep.Rows, []string{
			a.mode, d(int64(nq)), ms(a.totalSim), ms(a.meanSim), ms(a.wall),
			d(a.hits), d(a.subs), d(a.misses),
		})
	}
	off, on := arms[0], arms[1]
	served := on.hits + on.subs
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("cache budget 8 MiB, cache-affinity placement on; %d/%d queries served from cache (%d exact, %d by subsumption)",
			served, nq, on.hits, on.subs),
		fmt.Sprintf("total simulated time %s off vs %s on (%.1fx); cache hits execute zero tasks",
			off.totalSim.Round(time.Millisecond), on.totalSim.Round(time.Millisecond),
			float64(off.totalSim)/float64(maxDur(on.totalSim, time.Microsecond))),
	)
	if !RescacheShort {
		if served == 0 {
			return rep, fmt.Errorf("rescache: cache arm served no queries from cache")
		}
		if on.totalSim >= off.totalSim {
			return rep, fmt.Errorf("rescache: cache arm total sim %s is not below no-cache arm %s",
				on.totalSim, off.totalSim)
		}
	}
	return rep, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
