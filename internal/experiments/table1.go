package experiments

import (
	"context"
	"fmt"

	"repro/internal/storage"
	"repro/internal/workload"
)

// Table1 regenerates the dataset inventory of paper Table I at the scaled
// sizes, generating the actual partition files to measure on-disk bytes.
func Table1(scale Scale) (*Report, error) {
	// Two HDFS storage systems as in §VI-A ("the cluster has two HDFS
	// storage systems managed by Feisu"): A at /hdfs, B at /hdfsb.
	router := storage.NewRouter(storage.NewMemFS("", nil))
	for _, scheme := range []string{"hdfs", "hdfsb"} {
		dfs := storage.NewHDFS(scheme, nil)
		dfs.AddNode(scheme+"-node0", "r1")
		router.Register(dfs)
	}
	ctx := context.Background()

	specs := []workload.DatasetSpec{workload.T1Spec(), workload.T2Spec(), workload.T3Spec()}
	paperRows := map[string]string{"T1": "30 billion", "T2": "130 billion", "T3": "10 billion"}
	paperSize := map[string]string{"T1": "62 TB", "T2": "200 TB", "T3": "7 TB"}
	paperStore := map[string]string{"T1": "A", "T2": "B", "T3": "A"}

	// Keep the run tractable: scale partition sizes by the experiment
	// scale while preserving the inter-table proportions.
	for i := range specs {
		specs[i].RowsPerPart = scale.DataRowsPerPartition
	}

	rep := &Report{
		ID:    "table1",
		Title: "Experimental datasets (scaled reproduction of paper Table I)",
		Headers: []string{
			"Table", "Records", "Bytes", "Fields", "Storage",
			"Paper records", "Paper size", "Paper storage",
		},
		Notes: []string{
			"records scaled ~1:10^6 from the paper; field counts and the T3 ⊂ T1 attribute relation are preserved",
		},
	}
	for _, spec := range specs {
		meta, err := workload.Generate(ctx, router, spec)
		if err != nil {
			return nil, err
		}
		store, _ := router.Resolve(spec.PathPrefix + "/p0000")
		storeName := map[string]string{"hdfs": "A (hdfs)", "hdfsb": "B (hdfsb)"}[store.Scheme()]
		if storeName == "" {
			storeName = "local"
		}
		rep.Rows = append(rep.Rows, []string{
			spec.Name,
			d(meta.Rows()),
			d(meta.Bytes()),
			fmt.Sprintf("%d", meta.Schema.Len()),
			storeName,
			paperRows[spec.Name],
			paperSize[spec.Name],
			paperStore[spec.Name],
		})
	}
	return rep, nil
}
