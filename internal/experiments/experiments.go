// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI) against the in-process reproduction. Each experiment
// returns a Report that cmd/feisu-bench renders; bench_test.go wraps the
// same entry points as testing.B benchmarks. Absolute numbers differ from
// the paper's 4,000-node production cluster — the *shapes* (who wins, by
// what factor, where curves bend) are the reproduction target; see
// EXPERIMENTS.md for the recorded comparison.
package experiments

import (
	"fmt"
	"strings"
)

// Report is one experiment's rendered result.
type Report struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Scale sizes an experiment run. Tests use Small; the bench harness uses
// Default (still laptop-friendly; pass -scale big to cmd/feisu-bench for
// longer runs).
type Scale struct {
	// DataRowsPerPartition sizes generated fact tables.
	DataRowsPerPartition int
	// Partitions per fact table.
	Partitions int
	// Queries in warm-up/throughput streams.
	Queries int
	// Window groups queries for throughput series (Fig. 9a).
	Window int
	// Leaves in the in-process cluster.
	Leaves int
}

// SmallScale keeps unit tests fast.
func SmallScale() Scale {
	return Scale{DataRowsPerPartition: 512, Partitions: 4, Queries: 120, Window: 30, Leaves: 4}
}

// DefaultScale is the bench harness size.
func DefaultScale() Scale {
	return Scale{DataRowsPerPartition: 4096, Partitions: 8, Queries: 1200, Window: 100, Leaves: 8}
}

// BigScale approaches the paper's operating point more closely.
func BigScale() Scale {
	return Scale{DataRowsPerPartition: 16384, Partitions: 16, Queries: 5000, Window: 250, Leaves: 16}
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d(v int64) string    { return fmt.Sprintf("%d", v) }
