package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	feisu "repro"
	"repro/internal/workload"
)

// buildSystem creates a System with the scaled T1 dataset registered.
func buildSystem(scale Scale, mut func(*feisu.Config)) (*feisu.System, error) {
	cfg := feisu.Config{Leaves: scale.Leaves}
	if mut != nil {
		mut(&cfg)
	}
	sys, err := feisu.New(cfg)
	if err != nil {
		return nil, err
	}
	spec := workload.T1Spec()
	spec.Partitions = scale.Partitions
	spec.RowsPerPart = scale.DataRowsPerPartition
	meta, err := workload.Generate(context.Background(), sys.Router(), spec)
	if err != nil {
		return nil, err
	}
	if err := sys.RegisterTable(context.Background(), meta); err != nil {
		return nil, err
	}
	return sys, nil
}

// scanQueries produces the paper's §VI-B1 workload: random-parameter scan
// queries "SELECT a FROM T1 WHERE b OP1 value1 [[AND|OR] c OP2 value2]"
// over discrete value pools, so predicate reuse emerges exactly as in the
// production trace.
func scanQueries(n int, seed int64) []string {
	return scanQueriesWidth(n, seed, 1)
}

// scanQueriesWidth widens the value pools by the given factor; wider pools
// lower the predicate-reuse rate (used by Fig. 10, where the paper's
// federated scans see a smaller SmartIndex benefit than Fig. 9's hot
// stream).
func scanQueriesWidth(n int, seed int64, width int) []string {
	if width < 1 {
		width = 1
	}
	rng := rand.New(rand.NewSource(seed))
	// Parameters come from discrete pools: predicate reuse then emerges
	// exactly as in the production trace (§IV-A). The pool sizes mirror
	// the paper's operating point, where ~4000 queries saturate the hot
	// predicate set.
	numCols := []string{"clicks", "pos", "uid", "dwell", "score"}
	ops := []string{">", "<=", "="}
	atom := func() string {
		col := numCols[rng.Intn(len(numCols))]
		op := ops[rng.Intn(len(ops))]
		switch col {
		case "dwell":
			return fmt.Sprintf("%s %s %d", col, op, rng.Intn(6*width)*50/width)
		case "score":
			return fmt.Sprintf("%s %s 0.%02d", col, op, 1+rng.Intn(4*width))
		case "uid":
			return fmt.Sprintf("%s %s %d", col, op, rng.Intn(5*width)*20000/width)
		default:
			return fmt.Sprintf("%s %s %d", col, op, rng.Intn(8*width))
		}
	}
	contains := func() string {
		terms := []string{"weather", "music", "spam", "news", "maps"}
		return fmt.Sprintf("query CONTAINS '%s'", terms[rng.Intn(len(terms))])
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		sel := "COUNT(*)"
		if rng.Intn(4) == 0 {
			sel = "url"
		}
		var where string
		first := atom()
		if rng.Intn(5) == 0 {
			first = contains()
		}
		switch rng.Intn(3) {
		case 0:
			where = first
		case 1:
			where = first + " AND " + atom()
		default:
			where = first + " OR " + atom()
		}
		q := fmt.Sprintf("SELECT %s FROM T1 WHERE %s", sel, where)
		if sel == "url" {
			q += " LIMIT 100"
		}
		out = append(out, q)
	}
	return out
}

// streamResult is one run of a query stream.
type streamResult struct {
	// windowThroughput is the per-window mean simulated throughput in
	// queries per simulated second.
	windowThroughput []float64
	totalSim         time.Duration
	wall             time.Duration
}

// runStream executes the queries sequentially, recording per-window means.
func runStream(sys *feisu.System, queries []string, window int) (*streamResult, error) {
	ctx := context.Background()
	res := &streamResult{}
	start := time.Now()
	var winSim time.Duration
	inWin := 0
	for _, q := range queries {
		_, stats, err := sys.QueryStats(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", q, err)
		}
		res.totalSim += stats.SimTime
		winSim += stats.SimTime
		inWin++
		if inWin == window {
			res.windowThroughput = append(res.windowThroughput, float64(inWin)/winSim.Seconds())
			winSim, inWin = 0, 0
		}
	}
	if inWin > 0 {
		res.windowThroughput = append(res.windowThroughput, float64(inWin)/winSim.Seconds())
	}
	res.wall = time.Since(start)
	return res, nil
}

// Fig9a regenerates "scan performance with and without SmartIndex": the
// per-window throughput series as more queries are processed. Paper shape:
// the SmartIndex curve climbs as the index warms (>3x past the warm point)
// while the no-index curve stays flat.
func Fig9a(scale Scale) (*Report, error) {
	queries := scanQueries(scale.Queries, 42)

	withIdx, err := buildSystem(scale, nil)
	if err != nil {
		return nil, err
	}
	defer withIdx.Close()
	smart, err := runStream(withIdx, queries, scale.Window)
	if err != nil {
		return nil, err
	}

	noIdx, err := buildSystem(scale, func(c *feisu.Config) { c.Index = feisu.IndexNone })
	if err != nil {
		return nil, err
	}
	defer noIdx.Close()
	plain, err := runStream(noIdx, queries, scale.Window)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:      "fig9a",
		Title:   "Scan performance with and without SmartIndex",
		Headers: []string{"Queries processed", "SmartIndex (q/sim-s)", "No index (q/sim-s)", "Speedup"},
	}
	for i := range smart.windowThroughput {
		base := plain.windowThroughput[min(i, len(plain.windowThroughput)-1)]
		rep.Rows = append(rep.Rows, []string{
			d(int64((i + 1) * scale.Window)),
			f2(smart.windowThroughput[i]),
			f2(base),
			f2(smart.windowThroughput[i] / base),
		})
	}
	last := smart.windowThroughput[len(smart.windowThroughput)-1] /
		plain.windowThroughput[len(plain.windowThroughput)-1]
	first := smart.windowThroughput[0] / plain.windowThroughput[0]
	st := withIdx.IndexStats()
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("cold-window speedup %.2fx, warm-window speedup %.2fx (paper: >3x once warm)", first, last),
		fmt.Sprintf("index: %d hits, %d derived, %d misses, %d entries, %d bytes",
			st.Hits, st.DerivedHits, st.Misses, st.Entries, st.Bytes),
	)
	return rep, nil
}

// Fig9b adds the B-tree baseline: flat performance between the two curves
// (it avoids column re-reads but still pays per-query tree evaluation).
func Fig9b(scale Scale) (*Report, error) {
	queries := scanQueries(scale.Queries, 42)

	configs := []struct {
		name string
		mut  func(*feisu.Config)
	}{
		{"SmartIndex", nil},
		{"B-tree", func(c *feisu.Config) { c.Index = feisu.IndexBTree }},
		{"No index", func(c *feisu.Config) { c.Index = feisu.IndexNone }},
	}
	series := make([][]float64, len(configs))
	for i, cfg := range configs {
		sys, err := buildSystem(scale, cfg.mut)
		if err != nil {
			return nil, err
		}
		sr, err := runStream(sys, queries, scale.Window)
		sys.Close()
		if err != nil {
			return nil, err
		}
		series[i] = sr.windowThroughput
	}

	rep := &Report{
		ID:      "fig9b",
		Title:   "Comparison of SmartIndex and B-tree index",
		Headers: []string{"Queries processed", "SmartIndex (q/sim-s)", "B-tree (q/sim-s)", "No index (q/sim-s)"},
		Notes: []string{
			"paper shape: B-tree stays near-constant; SmartIndex overtakes it as the index warms",
		},
	}
	for i := range series[0] {
		row := []string{d(int64((i + 1) * scale.Window))}
		for _, s := range series {
			row = append(row, f2(s[min(i, len(s)-1)]))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
