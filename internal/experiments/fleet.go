package experiments

import (
	"context"
	"fmt"
	"time"

	feisu "repro"
	"repro/internal/metrics"
)

// TelemetryAddr, when non-empty (cmd/feisu-bench -metrics-addr), starts the
// HTTP telemetry exporter for the duration of the Fleet experiment so the
// stream can be scraped live from /metrics while it runs.
var TelemetryAddr string

// Fleet exercises the fleet-telemetry stack end to end: a cached, budgeted
// deployment runs the §VI-B1 scan stream and reports p50/p95/p99 simulated
// latency per window while SmartIndex warms, alongside the index-memory and
// cache-hit-ratio gauges that /metrics exports per leaf. Queries crossing
// the slow threshold land in the slow-query log.
func Fleet(scale Scale) (*Report, error) {
	sys, err := buildSystem(scale, func(c *feisu.Config) {
		c.CacheBytes = 64 << 20
		c.CachePrefixes = []string{"/hdfs/"}
		c.IndexMemoryBytes = 32 << 20
		// The slow threshold sits above typical warm latency, so the log
		// captures the cold outliers rather than everything.
		c.SlowQuerySimThreshold = 25 * time.Millisecond
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	notes := []string{}
	if TelemetryAddr != "" {
		srv, err := sys.StartTelemetry(TelemetryAddr, false)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		notes = append(notes, fmt.Sprintf("telemetry exporter live at %s/metrics during the run", srv.URL()))
		fmt.Printf("fleet: telemetry exporter at %s/metrics\n", srv.URL())
	}

	queries := scanQueries(scale.Queries, 7)
	rep := &Report{
		ID:      "fleet",
		Title:   "Fleet telemetry: latency quantiles per window while SmartIndex warms",
		Headers: []string{"Queries", "p50 (sim-ms)", "p95 (sim-ms)", "p99 (sim-ms)", "index MB", "cache hit%", "slow"},
	}

	window := scale.Window
	if window <= 0 {
		window = len(queries)
	}
	var win metrics.Histogram
	var slowAtWindowStart int64
	flush := func(processed int) {
		st := sys.IndexStats()
		hitRatio := 1 - sys.CacheMissRatio()
		slow := sys.Slowlog().Total()
		rep.Rows = append(rep.Rows, []string{
			d(int64(processed)),
			f2(win.Quantile(0.50) * 1000),
			f2(win.Quantile(0.95) * 1000),
			f2(win.Quantile(0.99) * 1000),
			f2(float64(st.Bytes) / (1 << 20)),
			f2(100 * hitRatio),
			d(slow - slowAtWindowStart),
		})
		slowAtWindowStart = slow
		win.Reset()
	}
	for i, q := range queries {
		_, stats, err := sys.QueryStats(context.Background(), q)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", q, err)
		}
		win.Observe(stats.SimTime.Seconds())
		if (i+1)%window == 0 {
			flush(i + 1)
		}
	}
	if win.Count() > 0 {
		flush(len(queries))
	}

	health := sys.ClusterHealth()
	notes = append(notes,
		fmt.Sprintf("cluster: %d alive, %d degraded, %d dead", health.Alive, health.Degraded, health.Dead),
		fmt.Sprintf("slow-query log holds %d entries (threshold sim>=25ms); inspect via \\slowlog or /debug/slowlog", sys.Slowlog().Total()),
		"paper shape: quantiles fall window over window as SmartIndex warms; the cache hit ratio climbs toward its plateau",
	)
	rep.Notes = notes
	return rep, nil
}
