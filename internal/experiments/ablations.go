package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	feisu "repro"
)

// Ablations runs the design-choice studies called out in DESIGN.md §5:
// bitmap compression, negation derivation, locality-aware scheduling, and
// identical-task result reuse.
func Ablations(scale Scale) (*Report, error) {
	rep := &Report{
		ID:      "ablations",
		Title:   "Design-choice ablations",
		Headers: []string{"Study", "Variant", "Metric", "Value"},
	}

	// 1. Index compression: memory footprint for the same warm state.
	for _, compress := range []bool{false, true} {
		sys, err := buildSystem(scale, func(c *feisu.Config) { c.IndexCompress = compress })
		if err != nil {
			return nil, err
		}
		queries := scanQueries(scale.Queries/2, 5)
		if _, err := runStream(sys, queries, scale.Window); err != nil {
			sys.Close()
			return nil, err
		}
		st := sys.IndexStats()
		sys.Close()
		label := "dense"
		if compress {
			label = "compressed"
		}
		rep.Rows = append(rep.Rows, []string{"index compression", label, "index bytes", d(st.Bytes)})
	}

	// 2. Negation derivation (Fig. 7 rewriting): derived hits vs misses on
	// a complement-heavy stream.
	for _, disable := range []bool{false, true} {
		sys, err := buildSystem(scale, func(c *feisu.Config) { c.IndexNoDerivation = disable })
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		pairs := []string{
			"SELECT COUNT(*) FROM T1 WHERE clicks > 5",
			"SELECT COUNT(*) FROM T1 WHERE clicks <= 5",
			"SELECT COUNT(*) FROM T1 WHERE pos >= 3",
			"SELECT COUNT(*) FROM T1 WHERE pos < 3",
		}
		for _, q := range pairs {
			if _, err := sys.Query(ctx, q); err != nil {
				sys.Close()
				return nil, err
			}
		}
		st := sys.IndexStats()
		sys.Close()
		label := "on"
		if disable {
			label = "off"
		}
		rep.Rows = append(rep.Rows, []string{"negation derivation", label, "derived hits",
			fmt.Sprintf("%d (misses %d)", st.DerivedHits, st.Misses)})
	}

	// 2b. TTL and history pinning: with an instant TTL, nothing survives
	// between queries and every run misses; history personalization pins
	// repeated predicates past the TTL (paper §IV-C2 + §III-C).
	for _, personalize := range []int{0, 2} {
		sys, err := buildSystem(scale, func(c *feisu.Config) {
			c.IndexTTL = time.Nanosecond
			c.PersonalizeThreshold = personalize
		})
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		const q = "SELECT COUNT(*) FROM T1 WHERE clicks > 5"
		for i := 0; i < 4; i++ {
			if _, err := sys.Query(ctx, q); err != nil {
				sys.Close()
				return nil, err
			}
		}
		st := sys.IndexStats()
		sys.Close()
		label := "instant TTL"
		if personalize > 0 {
			label = "instant TTL + pinning"
		}
		rep.Rows = append(rep.Rows, []string{"TTL vs pinning", label, "hits/misses",
			fmt.Sprintf("%d/%d", st.Hits+st.DerivedHits, st.Misses)})
	}

	// 3. Locality-aware scheduling: total simulated time over a spread of
	// no-index scans. Without locality, tasks land on arbitrary leaves and
	// every byte they read crosses the network from a replica holder.
	for _, off := range []bool{false, true} {
		sys, err := buildSystem(scale, func(c *feisu.Config) {
			c.LocalityOff = off
			c.Index = feisu.IndexNone
		})
		if err != nil {
			return nil, err
		}
		var total time.Duration
		for i := 0; i < 8; i++ {
			q := fmt.Sprintf("SELECT COUNT(*) FROM T1 WHERE dwell < %d", 100+10*i)
			_, stats, err := sys.QueryStats(context.Background(), q)
			if err != nil {
				sys.Close()
				return nil, err
			}
			total += stats.SimTime
		}
		sys.Close()
		label := "on"
		if off {
			label = "off"
		}
		rep.Rows = append(rep.Rows, []string{"locality scheduling", label, "sim total (8 scans)", total.String()})
	}

	// 4. Result reuse: total leaf work for concurrent identical queries.
	for _, disable := range []bool{false, true} {
		sys, err := buildSystem(scale, nil)
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		const q = "SELECT COUNT(*) FROM T1 WHERE uid < 50000"
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var opts []feisu.QueryOption
				if disable {
					opts = append(opts, feisu.WithoutResultReuse())
				}
				if _, err := sys.Query(ctx, q, opts...); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			sys.Close()
			return nil, err
		}
		reused := sys.Master().Jobs.Reused.Value()
		sys.Close()
		label := "on"
		if disable {
			label = "off"
		}
		rep.Rows = append(rep.Rows, []string{"result reuse", label, "tasks reused", d(reused)})
	}

	return rep, nil
}
