package experiments

import (
	"fmt"
	"time"

	"repro/internal/workload"
)

// logForScale shortens the two-month trace for small scales.
func logForScale(scale Scale) []workload.LogEntry {
	cfg := workload.DefaultLogConfig()
	if scale.Queries < 1000 {
		cfg.Duration = 7 * 24 * time.Hour
		cfg.QueriesPerDay = 1200
	}
	return workload.GenerateLog(cfg)
}

// Fig4 regenerates the data-locality analysis: the number of columns
// accessed repeatedly within a time span, per span (paper Fig. 4).
func Fig4(scale Scale) (*Report, error) {
	log := logForScale(scale)
	pts := workload.AnalyzeDataLocality(log, workload.DefaultSpans)
	rep := &Report{
		ID:      "fig4",
		Title:   "Number of accessed identical columns with different time spans",
		Headers: []string{"Span", "Repeated columns (avg per window)"},
		Notes: []string{
			fmt.Sprintf("synthetic log: %d queries over %s", len(log), log[len(log)-1].Time.Sub(log[0].Time).Round(time.Hour)),
			"paper shape: count grows with the span; a small hot set repeats even in 30m windows",
		},
	}
	for _, p := range pts {
		rep.Rows = append(rep.Rows, []string{p.Span.String(), f2(p.Value)})
	}
	return rep, nil
}

// Fig5 regenerates the query-similarity analysis: the ratio of queries
// sharing at least one exact predicate within a span (paper Fig. 5).
func Fig5(scale Scale) (*Report, error) {
	log := logForScale(scale)
	pts := workload.AnalyzeQuerySimilarity(log, workload.DefaultSpans)
	rep := &Report{
		ID:      "fig5",
		Title:   "Ratio of queries that share at least one query predicate",
		Headers: []string{"Span", "Similarity ratio"},
		Notes: []string{
			"paper shape: a large fraction of queries reuse a predicate even in short windows, growing with the span",
		},
	}
	for _, p := range pts {
		rep.Rows = append(rep.Rows, []string{p.Span.String(), f3(p.Value)})
	}
	return rep, nil
}

// Fig8 regenerates the keyword-frequency histogram (paper Fig. 8: scan and
// aggregation queries are more than 99% of the workload).
func Fig8(scale Scale) (*Report, error) {
	log := logForScale(scale)
	hist := workload.AnalyzeKeywords(log)
	rep := &Report{
		ID:      "fig8",
		Title:   "Keyword frequency in the query log",
		Headers: []string{"Kind", "Count", "Ratio"},
		Notes: []string{
			fmt.Sprintf("scan+aggregation share: %.4f (paper: >0.99)", workload.ScanAggRatio(log)),
		},
	}
	for _, k := range hist {
		rep.Rows = append(rep.Rows, []string{k.Keyword, fmt.Sprintf("%d", k.Count), f3(k.Ratio)})
	}
	return rep, nil
}
