package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	feisu "repro"
	"repro/internal/trace"
)

// stageAgg accumulates one pipeline stage's spans across a query stream.
type stageAgg struct {
	spans  int
	sim    time.Duration
	wall   time.Duration
	counts map[string]int64
}

// stageOf normalizes span names to pipeline stages so spans from different
// leaves/stems/tasks aggregate together.
func stageOf(name string) string {
	switch {
	case strings.HasPrefix(name, "stem/"):
		return "stem"
	case strings.HasPrefix(name, "leaf/"):
		return "leaf"
	case strings.HasPrefix(name, "task#"):
		return "task"
	default:
		return name
	}
}

// aggregate folds a span tree into the per-stage map.
func aggregate(s *trace.Span, agg map[string]*stageAgg) {
	if s == nil {
		return
	}
	st := stageOf(s.Name())
	a := agg[st]
	if a == nil {
		a = &stageAgg{counts: make(map[string]int64)}
		agg[st] = a
	}
	a.spans++
	a.sim += s.Sim()
	a.wall += s.Wall()
	for k, v := range s.Counts() {
		a.counts[k] += v
	}
	for _, c := range s.Children() {
		aggregate(c, agg)
	}
}

// stageOrder pins the well-known stages to pipeline order in the report.
var stageOrder = []string{
	"master/query", "master/load-dims", "master/execute", "master/finalize",
	"stem", "task", "leaf", "scan",
	"read:hdd", "read:ssd", "read:mem", "read:cold",
	"transfer", "spill-fetch", "reply-transfer",
}

// TraceProfile runs a traced scan stream and aggregates the span trees into
// a per-stage profile: where simulated time goes (scan vs device reads vs
// transfers) and how the SmartIndex and SSD cache behaved, per stage. This
// is the aggregate view of what EXPLAIN ANALYZE shows for one query.
func TraceProfile(scale Scale) (*Report, error) {
	n := scale.Queries
	if n > 200 {
		n = 200 // traced queries retain their span trees; keep the stream modest
	}
	queries := scanQueries(n, 42)

	sys, err := buildSystem(scale, func(c *feisu.Config) {
		c.CacheBytes = 64 << 20
		c.CachePrefixes = []string{"/hdfs/"}
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	ctx := context.Background()
	agg := make(map[string]*stageAgg)
	var totalSim time.Duration
	for _, q := range queries {
		_, stats, err := sys.QueryStats(ctx, q, feisu.WithTrace())
		if err != nil {
			return nil, fmt.Errorf("%q: %w", q, err)
		}
		totalSim += stats.SimTime
		aggregate(stats.Trace, agg)
	}

	rep := &Report{
		ID:      "trace",
		Title:   "Per-stage execution profile from query traces",
		Headers: []string{"Stage", "Spans", "Total sim", "Mean sim/query", "Counters"},
	}
	ordered := make([]string, 0, len(agg))
	seen := make(map[string]bool)
	for _, st := range stageOrder {
		if agg[st] != nil {
			ordered = append(ordered, st)
			seen[st] = true
		}
	}
	var extra []string
	for st := range agg {
		if !seen[st] {
			extra = append(extra, st)
		}
	}
	sort.Strings(extra)
	ordered = append(ordered, extra...)
	for _, st := range ordered {
		a := agg[st]
		keys := make([]string, 0, len(a.counts))
		for k := range a.counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%d", k, a.counts[k]))
		}
		rep.Rows = append(rep.Rows, []string{
			st,
			d(int64(a.spans)),
			a.sim.Round(time.Microsecond).String(),
			(a.sim / time.Duration(len(queries))).Round(time.Microsecond).String(),
			strings.Join(parts, " "),
		})
	}
	// Summarize the deployment registry with per-leaf counters summed.
	sums := make(map[string]int64)
	for name, v := range sys.Metrics().Snapshot() {
		if i := strings.Index(name, "."); i > 0 && strings.HasPrefix(name, "leaf") {
			name = "leaf.*" + name[i:]
		}
		sums[name] += v
	}
	names := make([]string, 0, len(sums))
	for n := range sums {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, sums[n]))
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d traced queries, %s total simulated time", len(queries), totalSim.Round(time.Microsecond)),
		"deployment metrics: "+strings.Join(parts, " "),
	)
	return rep, nil
}
