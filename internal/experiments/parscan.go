package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	feisu "repro"
	"repro/internal/workload"
)

// ParscanShort trims the parscan run to a smoke-sized stream (verify.sh).
var ParscanShort bool

// parscanQueries generates aggregation-only scans: no LIMIT (a pushed-down
// LIMIT forces the serial path) and no index reuse opportunity is needed —
// the experiment runs with IndexNone so every query pays the full predicate
// evaluation, which is the work the parallel scan pipeline divides.
func parscanQueries(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	aggs := []string{"COUNT(*)", "SUM(clicks)", "AVG(score)", "MAX(dwell)"}
	atom := func() string {
		switch rng.Intn(4) {
		case 0:
			return fmt.Sprintf("clicks > %d", rng.Intn(8))
		case 1:
			return fmt.Sprintf("score >= 0.%02d", 1+rng.Intn(40))
		case 2:
			return fmt.Sprintf("dwell <= %d", 50+rng.Intn(250))
		default:
			return fmt.Sprintf("uid < %d", 10000+rng.Intn(90000))
		}
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		where := atom()
		switch rng.Intn(3) {
		case 1:
			where += " AND " + atom()
		case 2:
			where += " OR " + atom()
		}
		out = append(out, fmt.Sprintf("SELECT %s FROM T1 WHERE %s", aggs[rng.Intn(len(aggs))], where))
	}
	return out
}

// Parscan measures the intra-task parallel scan pipeline: the same
// CPU-bound warm-cache stream at 1/2/4/8 scan workers. The dataset lives on
// the in-memory store (PathPrefix outside /hdfs), so reads cost little and
// predicate-evaluation CPU dominates each task's bill — the regime where
// striping blocks over workers should approach linear simulated speedup.
// Storage-bound workloads (see DESIGN.md) gain less: the critical path is
// then the device, not the cores.
func Parscan(scale Scale) (*Report, error) {
	nq := scale.Queries / 4
	if ParscanShort {
		nq = 12
		scale.Partitions = min(scale.Partitions, 2)
	}
	if nq < 8 {
		nq = 8
	}
	queries := parscanQueries(nq, 2024)

	type run struct {
		workers  int
		totalSim time.Duration // end-to-end query sim time (incl. RPC/transfer)
		scanSim  time.Duration // busiest-leaf execution time: what workers divide
		rows     int64
		wall     time.Duration
	}
	runs := make([]run, 0, 4)
	for _, workers := range []int{1, 2, 4, 8} {
		sys, err := feisu.New(feisu.Config{
			Leaves:      scale.Leaves,
			Index:       feisu.IndexNone,
			ScanWorkers: workers,
		})
		if err != nil {
			return nil, err
		}
		spec := workload.T1Spec()
		spec.PathPrefix = "/warm/t1" // in-memory store: warm-cache, CPU-bound
		spec.Partitions = scale.Partitions
		// Blocks are the unit of intra-task parallelism (1024 rows each):
		// keep at least 8 per partition so 8 workers have work, and trim
		// the filler attributes — they cost generation time, not scan time.
		spec.RowsPerPart = maxInt(scale.DataRowsPerPartition, 8*1024)
		spec.Fields = 12
		ctx := context.Background()
		meta, err := workload.Generate(ctx, sys.Router(), spec)
		if err != nil {
			sys.Close()
			return nil, err
		}
		if err := sys.RegisterTable(ctx, meta); err != nil {
			sys.Close()
			return nil, err
		}
		r := run{workers: workers}
		start := time.Now()
		for _, q := range queries {
			_, stats, err := sys.QueryStats(ctx, q)
			if err != nil {
				sys.Close()
				return nil, fmt.Errorf("parscan %q: %w", q, err)
			}
			r.totalSim += stats.SimTime
			r.scanSim += stats.ScanSimTime
			r.rows += stats.Scan.RowsScanned
		}
		r.wall = time.Since(start)
		sys.Close()
		runs = append(runs, r)
	}

	rep := &Report{
		ID:      "parscan",
		Title:   "Intra-task parallel scan: simulated speedup vs worker count",
		Headers: []string{"Workers", "Scan sim (ms)", "Scan speedup", "Rows/scan-s", "Query sim (ms)", "Query speedup", "Wall (ms)"},
	}
	serialScan, serialSim := runs[0].scanSim, runs[0].totalSim
	for _, r := range runs {
		rep.Rows = append(rep.Rows, []string{
			d(int64(r.workers)),
			f2(float64(r.scanSim) / float64(time.Millisecond)),
			f2(float64(serialScan) / float64(r.scanSim)),
			d(int64(float64(r.rows) / r.scanSim.Seconds())),
			f2(float64(r.totalSim) / float64(time.Millisecond)),
			f2(float64(serialSim) / float64(r.totalSim)),
			d(r.wall.Milliseconds()),
		})
	}
	at4 := float64(serialScan) / float64(runs[2].scanSim)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("queries=%d rows-scanned/run=%d (identical across worker counts: results are bit-equal)", len(queries), runs[0].rows),
		fmt.Sprintf("scan-time speedup at 4 workers: %.2fx (acceptance floor: 2x on this CPU-bound stream)", at4),
		"query sim time includes per-task RPC and reply-transfer latency, which no amount of scan parallelism removes (Amdahl); see DESIGN.md",
	)
	if at4 < 2 {
		return rep, fmt.Errorf("parscan: simulated scan-time speedup at 4 workers is %.2fx, below the 2x floor", at4)
	}
	return rep, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
