package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	feisu "repro"
	"repro/internal/workload"
)

// Fig10 regenerates "averaged scan throughput of a single server on
// different storage systems": scan queries touch both T2 (on the HDFS
// store) and T3 (on the cold Fatman store), with and without SmartIndex.
// Paper shape: SmartIndex improves per-server throughput by up to ~1.5x.
func Fig10(scale Scale) (*Report, error) {
	run := func(mut func(*feisu.Config)) (float64, error) {
		sys, err := feisu.New(applyMut(feisu.Config{Leaves: scale.Leaves}, mut))
		if err != nil {
			return 0, err
		}
		defer sys.Close()
		ctx := context.Background()

		t2 := workload.T2Spec()
		t2.PathPrefix = "/hdfs/t2"
		t2.Partitions = scale.Partitions
		t2.RowsPerPart = scale.DataRowsPerPartition
		t3 := workload.T3Spec()
		t3.PathPrefix = "/ffs/t3"
		t3.Partitions = scale.Partitions / 2
		if t3.Partitions == 0 {
			t3.Partitions = 1
		}
		t3.RowsPerPart = scale.DataRowsPerPartition
		for _, spec := range []workload.DatasetSpec{t2, t3} {
			meta, err := workload.Generate(ctx, sys.Router(), spec)
			if err != nil {
				return 0, err
			}
			if err := sys.RegisterTable(ctx, meta); err != nil {
				return 0, err
			}
		}

		// The same scan queries run against both storage systems (the
		// paper: "each scan query ... will scan both T2 and T3").
		queries := scanQueriesWidth(scale.Queries/2, 99, 8)
		var totalSim time.Duration
		var totalRows int64
		for _, q := range queries {
			for _, table := range []string{"T2", "T3"} {
				sql := strings.Replace(q, "FROM T1", "FROM "+table, 1)
				_, stats, err := sys.QueryStats(ctx, sql)
				if err != nil {
					return 0, fmt.Errorf("%q: %w", sql, err)
				}
				totalSim += stats.SimTime
				totalRows += stats.Scan.RowsScanned
				if stats.Scan.RowsScanned == 0 {
					// Fully index-served blocks still process their rows.
					totalRows += int64(scale.DataRowsPerPartition)
				}
			}
		}
		// Rows processed per simulated second, averaged per server.
		return float64(totalRows) / totalSim.Seconds() / float64(scale.Leaves), nil
	}

	withIdx, err := run(nil)
	if err != nil {
		return nil, err
	}
	without, err := run(func(c *feisu.Config) { c.Index = feisu.IndexNone })
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:      "fig10",
		Title:   "Averaged scan throughput of a single server on different storage systems",
		Headers: []string{"Configuration", "Rows/sim-s per server"},
		Rows: [][]string{
			{"SmartIndex enabled", f2(withIdx)},
			{"SmartIndex disabled", f2(without)},
			{"speedup", f2(withIdx / without)},
		},
		Notes: []string{
			"paper shape: SmartIndex lifts per-server throughput by up to ~1.5x on the federated scan",
		},
	}
	return rep, nil
}

func applyMut(cfg feisu.Config, mut func(*feisu.Config)) feisu.Config {
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}
