package experiments

import (
	"context"
	"fmt"
	"time"

	feisu "repro"
	"repro/internal/transport"
	"repro/internal/workload"
)

// WireShort trims the wire experiment to a smoke-sized run (verify.sh).
var WireShort bool

// Wire measures scale-out over real TCP sockets against the simulated
// fabric (fig-12-style axis, but the quantity under test is the transport):
// the same cluster, data and query stream run once per transport at each
// node count. The sim arm is the deterministic in-process fabric whose
// transfer charges come from the cost model; the tcp arm routes every
// cluster RPC — task dispatch, shuffle frames, result collection — through
// the length-prefixed wire codec over loopback sockets. The reproduction
// target: identical results and sim predictions on both arms, with the tcp
// arm's wall time exposing real serialization+socket overhead, and
// per-class encoded bytes growing with fan-out.
func Wire(scale Scale) (*Report, error) {
	rep := &Report{
		ID:      "wire",
		Title:   "Scale-out over real TCP sockets vs the simulated fabric",
		Headers: []string{"Nodes", "Transport", "Stream wall", "Sim prediction", "Wire KB (ctl/wr/rd/shuf)"},
		Notes: []string{
			"same data and query stream per row pair; sim prediction is the cost model's response time and must agree across transports",
			"wire KB is real encoded bytes on the socket per traffic class; the sim fabric moves no bytes",
		},
	}

	sizes := []int{1, 2, 4, 8}
	repeat := 3
	if WireShort {
		sizes = []int{2, 4}
		repeat = 1
	}
	queries := []string{
		"SELECT COUNT(*) FROM T1 WHERE clicks > 3 AND dwell < 250",
		"SELECT region, SUM(clicks) FROM T1 GROUP BY region",
		"SELECT COUNT(*) FROM T1 WHERE spam = false AND score > 0.25",
	}

	totalParts := scale.Partitions * 4
	for _, n := range sizes {
		var simPred [2]time.Duration
		for mi, mode := range []string{"sim", "tcp"} {
			sys, err := feisu.New(feisu.Config{Leaves: n, Index: feisu.IndexNone, Transport: mode})
			if err != nil {
				return nil, err
			}
			ctx := context.Background()
			spec := workload.T1Spec()
			spec.Partitions = totalParts
			spec.RowsPerPart = scale.DataRowsPerPartition
			meta, err := workload.Generate(ctx, sys.Router(), spec)
			if err != nil {
				sys.Close()
				return nil, err
			}
			if err := sys.RegisterTable(ctx, meta); err != nil {
				sys.Close()
				return nil, err
			}

			var wall time.Duration
			var sim time.Duration
			for r := 0; r < repeat; r++ {
				for _, q := range queries {
					start := time.Now()
					_, stats, err := sys.QueryStats(ctx, q)
					if err != nil {
						sys.Close()
						return nil, fmt.Errorf("%s @ %d nodes: %q: %w", mode, n, q, err)
					}
					wall += time.Since(start)
					sim += stats.SimTime
				}
			}
			simPred[mi] = sim

			wireCol := "-"
			if w := sys.WireTransport(); w != nil {
				kb := func(c transport.Class) int64 { return w.WireBytes[c].Value() / 1024 }
				wireCol = fmt.Sprintf("%d/%d/%d/%d", kb(transport.Control), kb(transport.Write), kb(transport.Read), kb(transport.Shuffle))
			}
			sys.Close()
			rep.Rows = append(rep.Rows, []string{
				d(int64(n)), mode,
				wall.Round(time.Microsecond).String(),
				sim.Round(time.Microsecond).String(),
				wireCol,
			})
		}
		// The cost model must be transport-blind: the sim fabric and the
		// wire codec bill the same declared sizes.
		if simPred[0] != simPred[1] {
			return rep, fmt.Errorf("sim prediction diverged at %d nodes: sim fabric %v vs tcp %v", n, simPred[0], simPred[1])
		}
	}
	rep.Notes = append(rep.Notes, "gate: sim predictions agree exactly between transports at every node count")
	return rep, nil
}
