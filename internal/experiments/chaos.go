package experiments

import (
	"context"
	"fmt"
	"time"

	feisu "repro"
	"repro/internal/chaos"
)

// ChaosSeed selects the fault schedule for the Chaos experiment
// (cmd/feisu-bench -seed); the same seed over the same scale replays the
// identical schedule.
var ChaosSeed int64 = 1

// ChaosShort (cmd/feisu-bench -short) trims the query stream for smoke
// runs (CI).
var ChaosShort bool

// Chaos runs the §VI-B1 scan stream under the deterministic fault plane —
// message drops/delays/duplicates, slow and corrupting storage reads, and
// a lifecycle controller that crashes, restarts and slows down leaves
// between queries — and reports how the recovery machinery (retries with
// backoff, hedged tasks, partial results) kept every query answering. Any
// query error fails the experiment: under leaf-kill chaos the system must
// degrade, never break.
func Chaos(scale Scale) (*Report, error) {
	sys, err := buildSystem(scale, func(c *feisu.Config) {
		c.Chaos = chaos.Default(ChaosSeed)
		// Manual ticks: the controller advances once per query, making the
		// lifecycle schedule a function of the seed alone.
		c.Chaos.Lifecycle.TickInterval = 0
		c.TaskTimeout = 250 * time.Millisecond
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	n := scale.Queries
	if n > 400 {
		n = 400 // chaos retries make queries slower; bound the stream
	}
	if ChaosShort && n > 40 {
		n = 40
	}
	queries := scanQueries(n, 7)

	var partials int
	for i, q := range queries {
		sys.ChaosTick()
		_, stats, err := sys.QueryStats(context.Background(), q, feisu.WithPartialResults())
		if err != nil {
			return nil, fmt.Errorf("query %d under chaos seed %d failed (%q): %w", i, ChaosSeed, q, err)
		}
		if len(stats.TaskErrors) > 0 {
			partials++
		}
	}

	plane := sys.Chaos()
	master := sys.Master()
	rep := &Report{
		ID:      "chaos",
		Title:   fmt.Sprintf("Correctness under failure: %d queries, chaos seed %d", len(queries), ChaosSeed),
		Headers: []string{"Metric", "Value"},
		Rows: [][]string{
			{"queries completed", d(int64(len(queries)))},
			{"queries errored", "0"},
			{"task retries", d(master.Retries.Value())},
			{"hedges fired", d(master.HedgesFired.Value())},
			{"hedges won", d(master.HedgesWon.Value())},
			{"partial-result degradations", d(int64(partials))},
			{"faults injected (total)", d(plane.FaultCount())},
			{"  transport drops", d(plane.Drops.Value())},
			{"  transport delays", d(plane.Delays.Value())},
			{"  transport duplicates", d(plane.Dups.Value())},
			{"  partition-blocked calls", d(plane.Partitions.Value())},
			{"  slow storage reads", d(plane.SlowReads.Value())},
			{"  storage read errors", d(plane.ReadErrs.Value())},
			{"  storage corruptions", d(plane.Corruptions.Value())},
			{"  leaf kills", d(plane.Kills.Value())},
			{"  leaf restarts", d(plane.Restarts.Value())},
			{"  leaf straggles", d(plane.Straggles.Value())},
		},
		Notes: []string{
			fmt.Sprintf("replay this schedule with: feisu-bench -exp chaos -seed %d", ChaosSeed),
			"every query completed despite leaf kills: failed tasks were retried on healthy leaves, straggler placements were hedged, and unrecoverable tasks degraded to partial results",
		},
	}
	return rep, nil
}
