package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// All experiment tests run at SmallScale to stay fast while asserting the
// paper's qualitative shapes.

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestReportString(t *testing.T) {
	r := &Report{ID: "x", Title: "T", Headers: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	s := r.String()
	for _, want := range []string{"== x: T ==", "a", "bb", "1", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestTable1(t *testing.T) {
	rep, err := Table1(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Field counts preserved from the paper.
	if rep.Rows[0][3] != "200" || rep.Rows[2][3] != "57" {
		t.Errorf("field counts = %v / %v", rep.Rows[0][3], rep.Rows[2][3])
	}
	// T2 is the biggest table.
	t1 := parseF(t, rep.Rows[0][1])
	t2 := parseF(t, rep.Rows[1][1])
	t3 := parseF(t, rep.Rows[2][1])
	if !(t2 > t1 && t1 > t3) {
		t.Errorf("size ordering violated: %v %v %v", t1, t2, t3)
	}
}

func TestFig4Shape(t *testing.T) {
	rep, err := Fig4(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, row := range rep.Rows {
		v := parseF(t, row[1])
		if v < prev {
			t.Errorf("locality not monotone: %v", rep.Rows)
			break
		}
		prev = v
	}
	if parseF(t, rep.Rows[0][1]) <= 0 {
		t.Error("shortest span should already repeat columns")
	}
}

func TestFig5Shape(t *testing.T) {
	rep, err := Fig5(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	first := parseF(t, rep.Rows[0][1])
	last := parseF(t, rep.Rows[len(rep.Rows)-1][1])
	if first < 0.3 || last < first || last > 1 {
		t.Errorf("similarity series out of shape: first=%v last=%v", first, last)
	}
}

func TestFig8Shape(t *testing.T) {
	rep, err := Fig8(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows[0][0] != "aggregation" {
		t.Errorf("dominant kind = %v", rep.Rows[0][0])
	}
	if !strings.Contains(rep.Notes[0], "scan+aggregation") {
		t.Errorf("notes = %v", rep.Notes)
	}
}

func TestFig9aShape(t *testing.T) {
	rep, err := Fig9a(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	firstSpeedup := parseF(t, rep.Rows[0][3])
	lastSpeedup := parseF(t, rep.Rows[len(rep.Rows)-1][3])
	// Paper shape: performance improves as more queries are processed.
	if lastSpeedup <= firstSpeedup {
		t.Errorf("speedup did not grow: first=%v last=%v\n%s", firstSpeedup, lastSpeedup, rep)
	}
	if lastSpeedup < 1.5 {
		t.Errorf("warm speedup %v too small\n%s", lastSpeedup, rep)
	}
}

func TestFig9bShape(t *testing.T) {
	rep, err := Fig9b(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Rows[len(rep.Rows)-1]
	smart := parseF(t, last[1])
	btree := parseF(t, last[2])
	plain := parseF(t, last[3])
	// Paper shape: warm SmartIndex beats B-tree; B-tree beats no index.
	if !(smart > btree && btree > plain) {
		t.Errorf("warm ordering violated: smart=%v btree=%v none=%v\n%s", smart, btree, plain, rep)
	}
}

func TestFig10Shape(t *testing.T) {
	rep, err := Fig10(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	speedup := parseF(t, rep.Rows[2][1])
	if speedup <= 1.0 {
		t.Errorf("SmartIndex speedup = %v, want > 1\n%s", speedup, rep)
	}
}

func TestFig11Shape(t *testing.T) {
	rep, err := Fig11(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	n := len(rep.Rows)
	missSmall := parseF(t, rep.Rows[0][2])
	missBig := parseF(t, rep.Rows[n-1][2])
	if missBig > missSmall {
		t.Errorf("miss ratio should fall with memory: %v -> %v\n%s", missSmall, missBig, rep)
	}
	thSmall := parseF(t, rep.Rows[0][3])
	thBig := parseF(t, rep.Rows[n-1][3])
	if thBig < thSmall*0.9 {
		t.Errorf("throughput should not fall with memory: %v -> %v", thSmall, thBig)
	}
	// The paper's 512MB≈2GB point: the last two budgets perform alike.
	th1x := parseF(t, rep.Rows[n-2][3])
	if th1x < thBig*0.7 {
		t.Errorf("1x budget should be close to 2x: %v vs %v", th1x, thBig)
	}
}

func TestFig12Shape(t *testing.T) {
	rep, err := Fig12(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	var measured []float64
	var extrapolated []float64
	for _, row := range rep.Rows {
		switch row[2] {
		case "measured":
			measured = append(measured, durSeconds(t, row[1]))
		case "extrapolated":
			extrapolated = append(extrapolated, durSeconds(t, row[1]))
		}
	}
	for i := 1; i < len(measured); i++ {
		if measured[i] >= measured[i-1] {
			t.Errorf("measured response not falling with nodes: %v", measured)
			break
		}
	}
	for i := 1; i < len(extrapolated); i++ {
		if extrapolated[i] >= extrapolated[i-1] {
			t.Errorf("extrapolated response not falling with nodes: %v", extrapolated)
			break
		}
	}
	// Linearity of the extrapolation: halving work should roughly halve
	// time (within 25%).
	if len(extrapolated) >= 2 {
		ratio := extrapolated[0] / extrapolated[1]
		if ratio < 1.5 || ratio > 2.5 {
			t.Errorf("extrapolated scaling ratio = %v, want ~2", ratio)
		}
	}
}

func durSeconds(t *testing.T, s string) float64 {
	t.Helper()
	d, err := time.ParseDuration(s)
	if err != nil {
		t.Fatalf("parse duration %q: %v", s, err)
	}
	return d.Seconds()
}

func TestAblations(t *testing.T) {
	rep, err := Ablations(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	byStudy := map[string][][]string{}
	for _, row := range rep.Rows {
		byStudy[row[0]] = append(byStudy[row[0]], row)
	}
	// Compression shrinks the index footprint.
	comp := byStudy["index compression"]
	if len(comp) != 2 || parseF(t, comp[1][3]) >= parseF(t, comp[0][3]) {
		t.Errorf("compression rows = %v", comp)
	}
	// Derivation converts misses into derived hits.
	der := byStudy["negation derivation"]
	if len(der) != 2 {
		t.Fatalf("derivation rows = %v", der)
	}
	onHits := parseF(t, strings.Fields(der[0][3])[0])
	offHits := parseF(t, strings.Fields(der[1][3])[0])
	if onHits <= 0 || offHits != 0 {
		t.Errorf("derivation hits on=%v off=%v", onHits, offHits)
	}
	// Reuse shares tasks when on, none when off.
	reuse := byStudy["result reuse"]
	if len(reuse) != 2 {
		t.Fatalf("reuse rows = %v", reuse)
	}
	if reuse[1][3] != "0" {
		t.Errorf("reuse-off should report 0, got %v", reuse[1][3])
	}
}

func TestAblationTTLPinning(t *testing.T) {
	rep, err := Ablations(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]string
	for _, row := range rep.Rows {
		if row[0] == "TTL vs pinning" {
			rows = append(rows, row)
		}
	}
	if len(rows) != 2 {
		t.Fatalf("ttl rows = %v", rows)
	}
	parseHM := func(s string) (float64, float64) {
		parts := strings.SplitN(s, "/", 2)
		return parseF(t, parts[0]), parseF(t, parts[1])
	}
	hNo, _ := parseHM(rows[0][3])
	hPin, _ := parseHM(rows[1][3])
	if hNo != 0 {
		t.Errorf("instant TTL without pinning should never hit, got %v", hNo)
	}
	if hPin == 0 {
		t.Errorf("pinning should produce hits despite the TTL: %v", rows[1])
	}
}

func TestShuffleShape(t *testing.T) {
	ShuffleShort = true
	defer func() { ShuffleShort = false }()
	rep, err := Shuffle(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	// 3 build scales x {broadcast, repartition} + the spill arm.
	if len(rep.Rows) != 7 {
		t.Fatalf("want 7 arms, got %d:\n%s", len(rep.Rows), rep)
	}
	// At each build scale the strategies must return identical row totals
	// (Shuffle itself enforces bag equality per query), and repartition
	// must schedule strictly more tasks: the map side of the shuffle runs
	// on both inputs.
	for s := 0; s < 3; s++ {
		bc, rp := rep.Rows[2*s], rep.Rows[2*s+1]
		if bc[7] != rp[7] {
			t.Fatalf("scale %s: strategies returned different row totals:\n%s", bc[0], rep)
		}
		if parseF(t, rp[3]) <= parseF(t, bc[3]) {
			t.Fatalf("scale %s: repartition tasks %s <= broadcast tasks %s; shuffle path did not engage:\n%s",
				bc[0], rp[3], bc[3], rep)
		}
	}
	spill := rep.Rows[6]
	if spill[1] != "repartition-spill" {
		t.Fatalf("last row should be the spill arm:\n%s", rep)
	}
	if parseF(t, spill[6]) <= 0 {
		t.Fatalf("memory-starved arm reported no spill:\n%s", rep)
	}
}

func TestWireShape(t *testing.T) {
	WireShort = true
	defer func() { WireShort = false }()
	rep, err := Wire(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	// 2 node counts x {sim, tcp}. Wire itself gates that sim predictions
	// agree exactly between transports; here check the tcp arms actually
	// moved encoded bytes and the sim arms did not.
	if len(rep.Rows) != 4 {
		t.Fatalf("want 4 arms, got %d:\n%s", len(rep.Rows), rep)
	}
	for i, row := range rep.Rows {
		switch row[1] {
		case "sim":
			if row[4] != "-" {
				t.Fatalf("row %d: sim fabric reported wire bytes:\n%s", i, rep)
			}
		case "tcp":
			if row[4] == "-" || row[4] == "0/0/0/0" {
				t.Fatalf("row %d: tcp arm moved no encoded bytes:\n%s", i, rep)
			}
		default:
			t.Fatalf("row %d: unknown transport %q", i, row[1])
		}
	}
}
