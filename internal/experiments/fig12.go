package experiments

import (
	"context"
	"fmt"
	"time"

	feisu "repro"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig12 regenerates "response time with different number of nodes": a
// fixed dataset scanned by clusters of growing size. The in-process part
// runs real clusters at laptop scale; the extrapolation extends the same
// cost model to the paper's 250–4,000 node axis. Paper shape: response
// time falls ~linearly in 1/nodes.
func Fig12(scale Scale) (*Report, error) {
	rep := &Report{
		ID:      "fig12",
		Title:   "Response time with different number of nodes",
		Headers: []string{"Nodes", "Response (sim)", "Kind"},
		Notes: []string{
			"fixed total dataset; in-process rows measured on real clusters, extrapolated rows from the same cost model at paper scale",
		},
	}

	// Real in-process clusters.
	totalParts := scale.Partitions * 4
	sizes := []int{1, 2, 4, 8}
	if scale.Leaves >= 16 {
		sizes = append(sizes, 16)
	}
	var base time.Duration
	for _, n := range sizes {
		sys, err := feisu.New(feisu.Config{Leaves: n, Index: feisu.IndexNone})
		if err != nil {
			return nil, err
		}
		spec := workload.T1Spec()
		spec.Partitions = totalParts
		spec.RowsPerPart = scale.DataRowsPerPartition
		ctx := context.Background()
		meta, err := workload.Generate(ctx, sys.Router(), spec)
		if err != nil {
			sys.Close()
			return nil, err
		}
		if err := sys.RegisterTable(ctx, meta); err != nil {
			sys.Close()
			return nil, err
		}
		_, stats, err := sys.QueryStats(ctx, "SELECT COUNT(*) FROM T1 WHERE clicks > 3 AND dwell < 250")
		sys.Close()
		if err != nil {
			return nil, err
		}
		if n == 1 {
			base = stats.SimTime
		}
		rep.Rows = append(rep.Rows, []string{d(int64(n)), stats.SimTime.Round(time.Microsecond).String(), "measured"})
	}
	if base > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf("measured 1-node baseline: %v", base.Round(time.Microsecond)))
	}

	// Cost-model extrapolation at the paper's scale: the paper's cluster
	// holds a fixed workload W of bytes; each node scans W/n from local
	// disk and ships a partial result up a 3-level tree.
	model := sim.DefaultCostModel()
	const workloadBytes = 4e12 // 4 TB scanned per query at paper scale
	for _, n := range []int{250, 500, 1000, 2000, 4000} {
		perNode := int64(workloadBytes / float64(n))
		leaf := model.ReadCost(sim.DeviceHDD, perNode) + model.ScanCost(perNode)
		// Partial results ride two hops of aggregation.
		agg := model.TransferCost(64<<10, 4) + model.TransferCost(64<<10, 4)
		resp := sim.CriticalPath(agg, leaf)
		rep.Rows = append(rep.Rows, []string{d(int64(n)), resp.Round(time.Millisecond).String(), "extrapolated"})
	}
	return rep, nil
}
