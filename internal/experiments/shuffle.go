package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	feisu "repro"
	"repro/internal/workload"
)

// ShuffleShort trims the shuffle experiment to a smoke-sized stream
// (verify.sh) and skips the acceptance gates.
var ShuffleShort bool

// shuffleBuildScales are the build-side (dimension) size multipliers the
// experiment sweeps: broadcast cost grows with the build side on every
// leaf, repartition cost does not, and the crossover is the point of the
// table.
var shuffleBuildScales = []int{1, 4, 16}

// shuffleJoinSpec sizes the fact/dimension pair from the experiment
// scale: the fact table tracks the scale's partition count and row
// budget; the dimension (build side) starts small and is swept by
// buildMul. The keyspace follows the dimension so every fact row keeps
// matching ~2 dimension rows on average at every build scale.
func shuffleJoinSpec(scale Scale, buildMul int) workload.JoinSpec {
	spec := workload.DefaultJoinSpec()
	spec.PathPrefix = fmt.Sprintf("/hdfs/benchjoin/x%d", buildMul)
	spec.FactPartitions = maxInt(scale.Partitions, 2)
	spec.FactRowsPerPart = maxInt(scale.DataRowsPerPartition/8, 64)
	spec.DimPartitions = maxInt(scale.Partitions/4, 1)
	spec.DimRowsPerPart = maxInt(scale.DataRowsPerPartition/32, 40) * buildMul
	dimRows := spec.DimPartitions * spec.DimRowsPerPart
	spec.Keyspace = int64(maxInt(dimRows/2, 8))
	return spec
}

// shuffleArm is one (build scale, strategy) cell of the sweep.
type shuffleArm struct {
	buildMul   int
	mode       string
	mutate     func(*feisu.Config)
	minWall    time.Duration
	totalSim   time.Duration
	tasks      int64
	spillBytes int64
	rows       int64
	prints     []uint64
}

// Shuffle compares the two general-join strategies — broadcast (every
// leaf receives the whole build side) versus hash repartition (both
// sides hash-partitioned and shipped to reducers) — on one identical
// query stream at three build-side scales, plus a memory-starved
// repartition arm at the largest scale that forces the reducers through
// the grace-hash spill path. Each arm reports task counts, simulated
// cost-model time, min wall time and spill volume; within a build scale
// every query's result bag is fingerprinted and the arms must agree, so
// the table doubles as an equivalence check at bench scale.
func Shuffle(scale Scale) (*Report, error) {
	nq := min(maxInt(scale.Queries/24, 12), 60)
	rounds := 2
	if ShuffleShort {
		nq = 8
		rounds = 1
		scale.Partitions = min(scale.Partitions, 4)
		scale.DataRowsPerPartition = min(scale.DataRowsPerPartition, 512)
	}

	forceRepartition := func(c *feisu.Config) {
		c.BroadcastThreshold = 1
		c.ShufflePartitions = maxInt(scale.Leaves, 2)
	}
	var arms []*shuffleArm
	addArm := func(mul int, mode string, mutate func(*feisu.Config)) *shuffleArm {
		a := &shuffleArm{buildMul: mul, mode: mode, mutate: mutate,
			minWall: time.Duration(1<<62 - 1)}
		arms = append(arms, a)
		return a
	}
	for _, mul := range shuffleBuildScales {
		addArm(mul, "broadcast", func(c *feisu.Config) {})
		addArm(mul, "repartition", forceRepartition)
	}
	spillMul := shuffleBuildScales[len(shuffleBuildScales)-1]
	spillArm := addArm(spillMul, "repartition-spill", func(c *feisu.Config) {
		forceRepartition(c)
		c.ShuffleMemoryBytes = 1 // every reducer partition spills
	})

	runArm := func(a *shuffleArm) error {
		spec := shuffleJoinSpec(scale, a.buildMul)
		queries := workload.JoinQueries(spec.FactName, spec.DimName, 7741, nq)
		cfg := feisu.Config{
			Leaves: scale.Leaves,
			Index:  feisu.IndexNone,
		}
		a.mutate(&cfg)
		sys, err := feisu.New(cfg)
		if err != nil {
			return err
		}
		defer sys.Close()
		ctx := context.Background()
		factMeta, dimMeta, _, _, err := workload.GenerateJoin(ctx, sys.Router(), spec)
		if err != nil {
			return err
		}
		if err := sys.RegisterTable(ctx, factMeta); err != nil {
			return err
		}
		if err := sys.RegisterTable(ctx, dimMeta); err != nil {
			return err
		}

		var totalSim time.Duration
		var tasks, spill, rows int64
		prints := make([]uint64, len(queries))
		start := time.Now()
		for i, q := range queries {
			res, stats, qErr := sys.QueryStats(ctx, q)
			if qErr != nil {
				return fmt.Errorf("shuffle: x%d %s %q: %w", a.buildMul, a.mode, q, qErr)
			}
			totalSim += stats.SimTime
			tasks += int64(stats.Tasks)
			spill += stats.ShuffleSpillBytes
			rows += int64(len(res.Rows))
			prints[i] = bagFingerprint(res)
		}
		wall := time.Since(start)
		if wall < a.minWall {
			a.minWall = wall
		}
		a.totalSim, a.tasks, a.spillBytes, a.rows, a.prints = totalSim, tasks, spill, rows, prints
		return nil
	}

	for r := 0; r < rounds; r++ {
		// Interleave arms so machine drift hits all of them equally.
		for _, a := range arms {
			if err := runArm(a); err != nil {
				return nil, err
			}
		}
	}

	rep := &Report{
		ID:    "shuffle",
		Title: "General joins: broadcast vs hash repartition across build-side scales",
		Headers: []string{"Build side", "Strategy", "Queries", "Tasks", "Min wall (ms)",
			"Total sim (ms)", "Spill (KB)", "Rows"},
	}
	ms := func(dur time.Duration) string { return f2(float64(dur) / float64(time.Millisecond)) }
	for _, a := range arms {
		spec := shuffleJoinSpec(scale, a.buildMul)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("x%d (%d rows)", a.buildMul, spec.DimPartitions*spec.DimRowsPerPart),
			a.mode, d(int64(nq)), d(a.tasks), ms(a.minWall), ms(a.totalSim),
			f2(float64(a.spillBytes) / 1024), d(a.rows),
		})
	}
	base := shuffleJoinSpec(scale, 1)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("fact %d x %d rows; dim swept x1/x4/x16 from %d x %d rows; every query's result bag fingerprint compared across strategies at each scale",
			base.FactPartitions, base.FactRowsPerPart, base.DimPartitions, base.DimRowsPerPart),
		fmt.Sprintf("repartition-spill re-runs the x%d repartition arm under a 1-byte reducer memory grant (grace-hash spill on every partition)", spillMul),
	)

	// Equivalence across strategies is non-negotiable at any scale: a
	// bench that reports timings for diverging answers measures nothing.
	byScale := map[int][]*shuffleArm{}
	for _, a := range arms {
		byScale[a.buildMul] = append(byScale[a.buildMul], a)
	}
	for mul, group := range byScale {
		for _, a := range group[1:] {
			for i := range a.prints {
				if a.prints[i] != group[0].prints[i] {
					return rep, fmt.Errorf("shuffle: x%d %s diverged from %s on query #%d", mul, a.mode, group[0].mode, i)
				}
			}
		}
	}
	if !ShuffleShort {
		for mul, group := range byScale {
			if len(group) >= 2 && group[1].tasks <= group[0].tasks {
				return rep, fmt.Errorf("shuffle: x%d repartition ran %d tasks vs broadcast's %d; the shuffle path did not engage",
					mul, group[1].tasks, group[0].tasks)
			}
		}
		if spillArm.spillBytes == 0 {
			return rep, fmt.Errorf("shuffle: memory-starved arm spilled nothing; the grace-hash path did not engage")
		}
	}
	return rep, nil
}

// bagFingerprint hashes a result as a bag: rendered rows, sorted, then
// FNV-1a folded. Column order matters, row order does not.
func bagFingerprint(res *feisu.Result) uint64 {
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		lines[i] = strings.Join(cells, "|")
	}
	sort.Strings(lines)
	h := fnv.New64a()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}
