package experiments

import (
	"fmt"

	feisu "repro"
)

// Fig11 regenerates "the impact of memory size on the performance of
// SmartIndex": the index miss ratio (a) and throughput (b) across memory
// budgets. Paper shape: misses fall and throughput rises with memory, and
// a mid-size budget already performs like a large one (512 MB ≈ 2 GB at
// production scale).
func Fig11(scale Scale) (*Report, error) {
	queries := scanQueries(scale.Queries, 7)

	// Establish the warm working-set size with an unlimited budget, then
	// sweep budgets around it — the same relative operating points as the
	// paper's 128 MB .. 2 GB axis.
	probe, err := buildSystem(scale, nil)
	if err != nil {
		return nil, err
	}
	if _, err := runStream(probe, queries, scale.Window); err != nil {
		probe.Close()
		return nil, err
	}
	workingSet := probe.IndexStats().Bytes / int64(scale.Leaves)
	probe.Close()
	if workingSet == 0 {
		workingSet = 1 << 20
	}

	fracs := []struct {
		label string
		num   int64
		den   int64
	}{
		{"1/16", 1, 16}, {"1/8", 1, 8}, {"1/4", 1, 4}, {"1/2", 1, 2}, {"1x", 1, 1}, {"2x", 2, 1},
	}
	rep := &Report{
		ID:      "fig11",
		Title:   "The impact of memory size on Feisu's performance",
		Headers: []string{"Budget (of warm set)", "Bytes/leaf", "Miss ratio", "Throughput (q/sim-s)"},
		Notes: []string{
			fmt.Sprintf("warm working set: %d bytes per leaf (stands in for the paper's 512MB operating point)", workingSet),
			"paper shape: miss ratio falls with memory; throughput saturates before the largest budget",
		},
	}
	for _, fr := range fracs {
		budget := workingSet * fr.num / fr.den
		if budget < 1024 {
			budget = 1024
		}
		sys, err := buildSystem(scale, func(c *feisu.Config) { c.IndexMemoryBytes = budget })
		if err != nil {
			return nil, err
		}
		sr, err := runStream(sys, queries, scale.Window)
		if err != nil {
			sys.Close()
			return nil, err
		}
		st := sys.IndexStats()
		sys.Close()
		total := st.Hits + st.DerivedHits + st.Misses
		miss := 0.0
		if total > 0 {
			miss = float64(st.Misses) / float64(total)
		}
		through := float64(len(queries)) / sr.totalSim.Seconds()
		rep.Rows = append(rep.Rows, []string{fr.label, d(budget), f3(miss), f2(through)})
	}
	return rep, nil
}
