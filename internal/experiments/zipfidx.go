package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	feisu "repro"
)

// ZipfidxShort trims the skew sweep to a smoke-sized stream (verify.sh)
// and skips the acceptance gates.
var ZipfidxShort bool

// zipfAtomPool is the reusable predicate-atom pool the skewed stream draws
// from: numeric comparisons over clicks/pos/uid plus CONTAINS terms (the
// only operator whose negation survives CNF as a Negated atom, exercising
// the pre-materialized-negation path). The pool is shuffled so Zipf rank
// does not correlate with atom type.
func zipfAtomPool(rng *rand.Rand) []string {
	var pool []string
	for v := 0; v < 16; v++ {
		pool = append(pool, fmt.Sprintf("clicks > %d", v))
	}
	for v := 1; v <= 10; v++ {
		pool = append(pool, fmt.Sprintf("pos <= %d", v))
	}
	for k := 1; k <= 12; k++ {
		pool = append(pool, fmt.Sprintf("uid > %d", k*6000))
	}
	for _, t := range []string{"weather", "music", "maps", "news", "stock", "video", "travel", "spam"} {
		pool = append(pool, fmt.Sprintf("query CONTAINS '%s'", t))
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool
}

// zipfidxStream generates n single-atom COUNT(*) queries: pool atoms drawn
// with Zipf(s) popularity (s <= 1 falls back to uniform draws — rand.Zipf
// requires s > 1), diluted with a steady 60% of never-repeated cold atoms —
// the ad-hoc scan pollution that stretches hot-atom reuse distances past
// what a recency-only LRU retains, exactly what the heat-pinned tier is
// supposed to survive — and a slice of NOTs so complement derivation and
// pre-materialized negations both see traffic.
func zipfidxStream(n int, seed int64, s float64, withChurn bool) []string {
	rng := rand.New(rand.NewSource(seed))
	pool := zipfAtomPool(rng)
	var zipf *rand.Zipf
	if s > 1 {
		zipf = rand.NewZipf(rng, s, 1, uint64(len(pool)-1))
	}
	churn := 0
	out := make([]string, 0, n)
	for len(out) < n {
		if withChurn && rng.Intn(5) < 3 {
			// Cold churn: a fresh uid threshold that never recurs (97 is
			// coprime with the range, so values stay distinct for streams
			// far longer than any scale used here). Each one costs a scan,
			// enters the index, and is never looked up again.
			churn++
			out = append(out, fmt.Sprintf("SELECT COUNT(*) FROM T1 WHERE uid > %d", 37+(churn*97)%99000))
			continue
		}
		var rank int
		if zipf != nil {
			rank = int(zipf.Uint64())
		} else {
			rank = rng.Intn(len(pool))
		}
		atom := pool[rank]
		if rng.Intn(4) == 0 && (strings.HasPrefix(atom, "query CONTAINS") || rng.Intn(2) == 0) {
			atom = "NOT (" + atom + ")"
		}
		out = append(out, "SELECT COUNT(*) FROM T1 WHERE "+atom)
	}
	return out
}

// zipfidxArm runs one stream against one index configuration and returns
// (hit rate, total scan sim-time, the system for final stats). The caller
// closes the system.
func zipfidxArm(scale Scale, queries []string, budget int64, heavyHitters int) (float64, time.Duration, *feisu.System, error) {
	sys, err := buildSystem(scale, func(c *feisu.Config) {
		c.IndexMemoryBytes = budget
		c.IndexHeavyHitters = heavyHitters
		// Striped entries carry their pre-materialized negation, roughly
		// doubling per-entry bytes; a high share lets the hot tier hold the
		// whole guaranteed-heavy set (the mass scaling still returns the
		// budget to the cold tier on low-skew streams).
		c.IndexHotShare = 0.9
		// Serial scans keep Store/eviction order — and therefore hit
		// counters and sim time — deterministic for the gates.
		c.ScanWorkers = -1
	})
	if err != nil {
		return 0, 0, nil, err
	}
	sr, err := runStream(sys, queries, scale.Window)
	if err != nil {
		sys.Close()
		return 0, 0, nil, err
	}
	st := sys.IndexStats()
	total := st.Hits + st.DerivedHits + st.Misses
	hit := 0.0
	if total > 0 {
		hit = float64(st.Hits+st.DerivedHits) / float64(total)
	}
	return hit, sr.totalSim, sys, nil
}

// Zipfidx sweeps workload skew and compares heat-aware SmartIndex
// budgeting (space-saving sketch, hot tier, striped layout) against the
// uniform-LRU baseline under the same memory budget. Gates (skipped with
// -short): the heat-aware arm has a strictly higher hit rate and lower
// scan sim-time at s >= 1.4, and is within noise of the baseline on the
// near-uniform stream.
func Zipfidx(scale Scale) (*Report, error) {
	nq := scale.Queries
	skews := []float64{1.0, 1.2, 1.4, 1.7, 2.0}
	if ZipfidxShort {
		skews = []float64{1.0, 1.7}
		if nq > 160 {
			nq = 160
		}
	}

	// Budget selection: measure the pool's warm working set (churn-free
	// uniform stream, unlimited budget), then run the sweep with half of
	// it. Half the pool fits, so recency alone keeps the very hottest
	// atoms — but under the 60% cold-churn dilution, mid-rank atoms recur
	// farther apart than the budget holds entries, so a uniform LRU has
	// always evicted them by the time they return.
	probe, err := buildSystem(scale, func(c *feisu.Config) { c.ScanWorkers = -1 })
	if err != nil {
		return nil, err
	}
	if _, err := runStream(probe, zipfidxStream(nq, 91, 0, false), scale.Window); err != nil {
		probe.Close()
		return nil, err
	}
	poolSet := probe.IndexStats().Bytes / int64(scale.Leaves)
	probe.Close()
	if poolSet == 0 {
		poolSet = 1 << 20
	}
	budget := poolSet / 2
	if budget < 1024 {
		budget = 1024
	}

	// k=64 places the guaranteed-heavy bar (1/64 of touches) between the
	// uniform pool rate (1/46 of the 40% pool slice ≈ 0.9%) and the skewed
	// mid-rank atoms whose reuse distance exceeds the LRU budget — the
	// atoms where heat beats recency.
	const heavyHitters = 64
	rep := &Report{
		ID:    "zipfidx",
		Title: "Skew-aware SmartIndex: heat-aware vs uniform-LRU budget across Zipf exponents",
		Headers: []string{"Zipf s", "LRU hit", "Heat hit", "LRU sim", "Heat sim", "Sim ratio",
			"Hot entries", "Promoted", "Demoted"},
		Notes: []string{
			fmt.Sprintf("budget %d bytes/leaf (1/2 of the %d-byte pool working set), sketch k=%d, hot share 0.9, serial scans",
				budget, poolSet, heavyHitters),
			"s=1.0 draws uniformly (rand.Zipf needs s>1); gate: heat wins at s>=1.4, within noise at s=1.0",
		},
	}

	var gateErr error
	for _, s := range skews {
		queries := zipfidxStream(nq, 91, s, true)
		lruHit, lruSim, lruSys, err := zipfidxArm(scale, queries, budget, 0)
		if err != nil {
			return nil, fmt.Errorf("zipfidx s=%.1f uniform arm: %w", s, err)
		}
		lruSys.Close()
		heatHit, heatSim, heatSys, err := zipfidxArm(scale, queries, budget, heavyHitters)
		if err != nil {
			return nil, fmt.Errorf("zipfidx s=%.1f heat arm: %w", s, err)
		}
		hst := heatSys.IndexStats()
		heatSys.Close()

		ratio := heatSim.Seconds() / lruSim.Seconds()
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.1f", s), f3(lruHit), f3(heatHit),
			lruSim.Round(time.Microsecond).String(), heatSim.Round(time.Microsecond).String(),
			f3(ratio), d(hst.HotEntries), d(hst.Promoted), d(hst.Demoted),
		})

		if ZipfidxShort {
			continue
		}
		switch {
		case s >= 1.4:
			if heatHit <= lruHit || heatSim >= lruSim {
				gateErr = fmt.Errorf("zipfidx: heat arm must beat uniform LRU at s=%.1f (hit %.3f vs %.3f, sim %s vs %s)",
					s, heatHit, lruHit, heatSim, lruSim)
			} else if hst.Promoted == 0 {
				gateErr = fmt.Errorf("zipfidx: heat arm promoted nothing at s=%.1f — the win is vacuous", s)
			}
		case s == 1.0:
			if heatSim.Seconds() > lruSim.Seconds()*1.05 || heatHit < lruHit-0.02 {
				gateErr = fmt.Errorf("zipfidx: heat arm out of noise band on the uniform stream (hit %.3f vs %.3f, sim %s vs %s)",
					heatHit, lruHit, heatSim, lruSim)
			}
		}
		if gateErr != nil {
			return rep, gateErr
		}
	}
	return rep, nil
}
