package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	feisu "repro"
	"repro/internal/workload"
)

// AdmissionShort trims the admission run to a smoke-sized sweep (verify.sh).
var AdmissionShort bool

// admissionMaxConcurrent is the slot cap the "admission on" arm runs with;
// the offered-load sweep crosses it so the queue and the shed path are both
// exercised.
const admissionMaxConcurrent = 4

// Admission measures what the admission queue buys under overload: the same
// CPU-bound query stream offered at rising concurrency, once with admission
// control off (every submission executes immediately) and once with a
// 4-slot admission queue (per-class depth 8, queue-full sheds). The workload
// is the parscan regime — warm in-memory data, IndexNone — so concurrent
// queries genuinely contend for CPU and an unbounded fan-in degrades every
// query in flight. Reported per (mode, offered load): completed/shed counts,
// p50/p95/p99 latency of completed queries, and goodput (completed
// queries/s). The acceptance shape: with admission off, p99 grows roughly
// with the offered concurrency (no protection); with admission on, p99 stays
// bounded by the queue bound — excess load is shed with a typed retry-after
// error instead of being allowed to collapse the tail.
func Admission(scale Scale) (*Report, error) {
	loads := []int{2, 8, 32, 64}
	perClient := 10
	if AdmissionShort {
		loads = []int{2, 16}
		perClient = 4
		scale.Partitions = min(scale.Partitions, 2)
	}

	maxClients := loads[len(loads)-1]
	queries := parscanQueries(maxClients*perClient, 7321)

	type cell struct {
		mode          string
		load          int
		completed     int
		shed          int
		p50, p95, p99 time.Duration
		goodput       float64 // completed queries per second
	}
	var cells []cell

	for _, admission := range []bool{false, true} {
		mode := "off"
		cfg := feisu.Config{
			Leaves: scale.Leaves,
			Index:  feisu.IndexNone,
		}
		if admission {
			mode = "on"
			cfg.MaxConcurrentQueries = admissionMaxConcurrent
			cfg.MaxQueueDepth = 2 * admissionMaxConcurrent
		}
		for _, load := range loads {
			sys, err := feisu.New(cfg)
			if err != nil {
				return nil, err
			}
			spec := workload.T1Spec()
			spec.PathPrefix = "/warm/t1" // in-memory store: CPU-bound contention
			spec.Partitions = scale.Partitions
			spec.RowsPerPart = maxInt(scale.DataRowsPerPartition, 4096)
			spec.Fields = 10
			ctx := context.Background()
			meta, err := workload.Generate(ctx, sys.Router(), spec)
			if err == nil {
				err = sys.RegisterTable(ctx, meta)
			}
			if err != nil {
				sys.Close()
				return nil, err
			}

			var (
				mu        sync.Mutex
				latencies []time.Duration
				shed      int
			)
			start := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < load; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						q := queries[(c*perClient+i)%len(queries)]
						qStart := time.Now()
						_, qErr := sys.Query(ctx, q, feisu.WithoutResultReuse())
						lat := time.Since(qStart)
						mu.Lock()
						if errors.Is(qErr, feisu.ErrOverloaded) {
							shed++
						} else if qErr == nil {
							latencies = append(latencies, lat)
						}
						mu.Unlock()
					}
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start)
			sys.Close()

			if len(latencies) == 0 {
				return nil, fmt.Errorf("admission: mode=%s load=%d completed no queries", mode, load)
			}
			sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
			q := func(p float64) time.Duration {
				idx := int(p * float64(len(latencies)-1))
				return latencies[idx]
			}
			cells = append(cells, cell{
				mode:      mode,
				load:      load,
				completed: len(latencies),
				shed:      shed,
				p50:       q(0.50),
				p95:       q(0.95),
				p99:       q(0.99),
				goodput:   float64(len(latencies)) / elapsed.Seconds(),
			})
		}
	}

	rep := &Report{
		ID:    "admission",
		Title: "Admission control: tail latency and goodput vs offered load",
		Headers: []string{"Admission", "Clients", "Completed", "Shed",
			"p50 (ms)", "p95 (ms)", "p99 (ms)", "Goodput (q/s)"},
	}
	ms := func(d time.Duration) string { return f2(float64(d) / float64(time.Millisecond)) }
	for _, c := range cells {
		rep.Rows = append(rep.Rows, []string{
			c.mode, d(int64(c.load)), d(int64(c.completed)), d(int64(c.shed)),
			ms(c.p50), ms(c.p95), ms(c.p99), f2(c.goodput),
		})
	}

	// The acceptance comparison: p99 at the highest offered load, off vs on.
	n := len(loads)
	offPeak, onPeak := cells[n-1], cells[2*n-1]
	offBase := cells[0]
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("slots=%d queue-depth=%d/class; shed queries return ErrOverloaded with a retry-after hint and never partial rows",
			admissionMaxConcurrent, 2*admissionMaxConcurrent),
		fmt.Sprintf("p99 at %d clients: %s with admission off vs %s with admission on (%.1fx)",
			offPeak.load, offPeak.p99.Round(time.Millisecond), onPeak.p99.Round(time.Millisecond),
			float64(offPeak.p99)/float64(onPeak.p99)),
		fmt.Sprintf("admission-off p99 grew %.1fx from %d to %d clients; with admission on the queue bound caps the wait a completed query can absorb",
			float64(offPeak.p99)/float64(offBase.p99), offBase.load, offPeak.load),
	)
	if !AdmissionShort && offPeak.p99 <= onPeak.p99 {
		return rep, fmt.Errorf("admission: p99 under overload with admission on (%s) is not below admission off (%s)",
			onPeak.p99, offPeak.p99)
	}
	return rep, nil
}
