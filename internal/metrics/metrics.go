// Package metrics provides the lightweight counters, gauges, histograms
// and windowed throughput meters used across Feisu's servers for
// monitoring and for the benchmark harness' reporting. A Registry collects
// them — flat named counters for quick dumps, plus labeled families
// (name + key=value labels, e.g. leaf="leaf0") that back the Prometheus
// exposition of internal/telemetry.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative for gauges built on Counter, but Feisu uses
// it monotonically).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 gauge: a value that can go up and down (queue
// depth, resident bytes, hit ratio).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// WindowMeter groups observations into fixed-size windows (e.g. "queries
// 1-500, 501-1000, ...") and reports the per-window mean — the series shape
// used by the paper's Fig. 9a, where throughput improves as more queries are
// processed and SmartIndex warms up.
type WindowMeter struct {
	mu     sync.Mutex
	size   int
	window []float64
	means  []float64
}

// NewWindowMeter returns a meter with the given window size.
func NewWindowMeter(size int) *WindowMeter {
	if size <= 0 {
		size = 100
	}
	return &WindowMeter{size: size}
}

// Observe records one value, sealing a window when it fills.
func (m *WindowMeter) Observe(v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.window = append(m.window, v)
	if len(m.window) == m.size {
		m.means = append(m.means, mean(m.window))
		m.window = m.window[:0]
	}
}

// Series returns the sealed per-window means only. The trailing partial
// window — whose mean is computed over fewer observations and would skew a
// warmup series' tail — is reported separately by Partial, so callers can
// always tell a sealed window from an in-progress one.
func (m *WindowMeter) Series() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]float64(nil), m.means...)
}

// Partial returns the in-progress window's mean and how many observations
// it holds; n is 0 (and the mean meaningless) when the last window sealed
// exactly.
func (m *WindowMeter) Partial() (mean_ float64, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.window) == 0 {
		return 0, 0
	}
	return mean(m.window), len(m.window)
}

func mean(vals []float64) float64 {
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Label is one key=value pair attached to a labeled metric.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// FamilyType tags a metric family's kind for exposition.
type FamilyType int

// Family types.
const (
	TypeCounter FamilyType = iota
	TypeGauge
	TypeHistogram
)

// String returns the Prometheus TYPE keyword.
func (t FamilyType) String() string {
	switch t {
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// Sample is one labeled instance within a family.
type Sample struct {
	Labels []Label // sorted by key
	Value  float64
	// Hist is set instead of Value for histogram families.
	Hist *HistogramSnapshot
}

// Family is all samples sharing one metric name and type.
type Family struct {
	Name    string
	Type    FamilyType
	Samples []Sample
}

// Registry is a named collection of metrics exposing server state. It is
// the central per-deployment metrics surface: the master, leaves,
// SmartIndex and the SSD cache register into one registry so a single
// snapshot shows the whole system's state. It holds two layers:
//
//   - flat counters (Counter / Register / Snapshot / String), the quick
//     "leaf0.index.hits=12" dump surfaced by cmd/feisu's \metrics;
//   - labeled families (CounterWith / GaugeWith / HistogramWith /
//     RegisterGaugeFunc ...), e.g. feisu_index_bytes{leaf="leaf0"}, which
//     back the Prometheus exposition.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	labeled  map[string]*labeledEntry // key: name + canonical label string
	order    []string                 // insertion order of labeled keys (stable snapshots re-sort by name)
}

// labeledEntry is one labeled metric binding.
type labeledEntry struct {
	name   string
	labels []Label
	typ    FamilyType
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // gauge callback, evaluated at snapshot time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter), labeled: make(map[string]*labeledEntry)}
}

// Counter returns (creating if needed) the named flat counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Register adopts an externally owned counter under the given name, so
// components keep their cheap struct-field counters while still appearing
// in the registry's snapshot. Re-registering a name replaces the binding.
// Nil receivers and nil counters are ignored, so components can register
// unconditionally.
func (r *Registry) Register(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
}

// Snapshot returns a copy of all flat counter values.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// String renders the flat snapshot sorted by name.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += fmt.Sprintf("%s=%d ", n, snap[n])
	}
	return s
}

// canonLabels sorts a copy of the labels by key.
func canonLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// labeledKey builds the identity of a labeled metric.
func labeledKey(name string, labels []Label) string {
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte(0)
		sb.WriteString(l.Key)
		sb.WriteByte(1)
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// getOrCreate finds or installs a labeled entry. Caller must not hold r.mu.
func (r *Registry) getOrCreate(name string, labels []Label, typ FamilyType, build func() *labeledEntry) *labeledEntry {
	labels = canonLabels(labels)
	key := labeledKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.labeled[key]; ok {
		return e
	}
	e := build()
	e.name, e.labels, e.typ = name, labels, typ
	r.labeled[key] = e
	r.order = append(r.order, key)
	return e
}

// CounterWith returns (creating if needed) the labeled counter.
func (r *Registry) CounterWith(name string, labels ...Label) *Counter {
	e := r.getOrCreate(name, labels, TypeCounter, func() *labeledEntry { return &labeledEntry{c: &Counter{}} })
	return e.c
}

// GaugeWith returns (creating if needed) the labeled gauge.
func (r *Registry) GaugeWith(name string, labels ...Label) *Gauge {
	e := r.getOrCreate(name, labels, TypeGauge, func() *labeledEntry { return &labeledEntry{g: &Gauge{}} })
	return e.g
}

// HistogramWith returns (creating if needed) the labeled histogram.
func (r *Registry) HistogramWith(name string, labels ...Label) *Histogram {
	e := r.getOrCreate(name, labels, TypeHistogram, func() *labeledEntry { return &labeledEntry{h: &Histogram{}} })
	return e.h
}

// RegisterCounterWith adopts an externally owned counter as a labeled
// metric (same sharing rationale as Register). Nil-safe.
func (r *Registry) RegisterCounterWith(name string, c *Counter, labels ...Label) {
	if r == nil || c == nil {
		return
	}
	r.getOrCreate(name, labels, TypeCounter, func() *labeledEntry { return &labeledEntry{c: c} })
}

// RegisterGaugeFunc installs a gauge whose value is computed by fn at
// snapshot time — the natural shape for values derived from component
// state (SmartIndex resident bytes, cache hit ratio) without a write on
// the hot path. fn runs outside the registry lock and must be safe to call
// from any goroutine. Nil-safe.
func (r *Registry) RegisterGaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	r.getOrCreate(name, labels, TypeGauge, func() *labeledEntry { return &labeledEntry{fn: fn} })
}

// sanitizeName maps an arbitrary metric name onto the Prometheus
// identifier alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			if i == 0 && r >= '0' && r <= '9' {
				sb.WriteByte('_')
			}
			sb.WriteByte('_')
			continue
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

// Families snapshots every metric — labeled families plus the flat
// counters (exported under their sanitized names with no labels) — sorted
// by family name, with samples sorted by label string. Gauge callbacks are
// evaluated outside the registry lock, so a slow callback cannot block
// registrations on the query hot path.
func (r *Registry) Families() []Family {
	r.mu.Lock()
	entries := make([]*labeledEntry, 0, len(r.order))
	for _, key := range r.order {
		entries = append(entries, r.labeled[key])
	}
	flat := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		flat[name] = c
	}
	r.mu.Unlock()

	byName := make(map[string]*Family)
	var names []string
	add := func(name string, typ FamilyType, s Sample) {
		f, ok := byName[name]
		if !ok {
			f = &Family{Name: name, Type: typ}
			byName[name] = f
			names = append(names, name)
		}
		f.Samples = append(f.Samples, s)
	}
	for _, e := range entries {
		name := sanitizeName(e.name)
		switch {
		case e.c != nil:
			add(name, TypeCounter, Sample{Labels: e.labels, Value: float64(e.c.Value())})
		case e.g != nil:
			add(name, TypeGauge, Sample{Labels: e.labels, Value: e.g.Value()})
		case e.fn != nil:
			add(name, TypeGauge, Sample{Labels: e.labels, Value: e.fn()})
		case e.h != nil:
			snap := e.h.Snapshot()
			add(name, TypeHistogram, Sample{Labels: e.labels, Hist: &snap})
		}
	}
	for name, c := range flat {
		add(sanitizeName(name), TypeCounter, Sample{Value: float64(c.Value())})
	}

	out := make([]Family, 0, len(byName))
	for _, name := range names {
		f := byName[name]
		sort.Slice(f.Samples, func(i, j int) bool {
			return labeledKey("", f.Samples[i].Labels) < labeledKey("", f.Samples[j].Labels)
		})
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
