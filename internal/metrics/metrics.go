// Package metrics provides the lightweight counters, histograms and
// windowed throughput meters used across Feisu's servers for monitoring and
// for the benchmark harness' reporting.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative for gauges built on Counter, but Feisu uses
// it monotonically).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram records observations and reports quantiles. It keeps raw values;
// Feisu's per-query volumes are small enough that exact quantiles are fine.
type Histogram struct {
	mu   sync.Mutex
	vals []float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.vals = append(h.vals, v)
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.vals)
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range h.vals {
		sum += v
	}
	return sum / float64(len(h.vals))
}

// Quantile returns the q-quantile (0 <= q <= 1), or 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), h.vals...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.vals = h.vals[:0]
	h.mu.Unlock()
}

// WindowMeter groups observations into fixed-size windows (e.g. "queries
// 1-500, 501-1000, ...") and reports the per-window mean — the series shape
// used by the paper's Fig. 9a, where throughput improves as more queries are
// processed and SmartIndex warms up.
type WindowMeter struct {
	mu     sync.Mutex
	size   int
	window []float64
	means  []float64
}

// NewWindowMeter returns a meter with the given window size.
func NewWindowMeter(size int) *WindowMeter {
	if size <= 0 {
		size = 100
	}
	return &WindowMeter{size: size}
}

// Observe records one value, sealing a window when it fills.
func (m *WindowMeter) Observe(v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.window = append(m.window, v)
	if len(m.window) == m.size {
		m.means = append(m.means, mean(m.window))
		m.window = m.window[:0]
	}
}

// Series returns the sealed per-window means, plus the partial window's mean
// when it has any observations.
func (m *WindowMeter) Series() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]float64(nil), m.means...)
	if len(m.window) > 0 {
		out = append(out, mean(m.window))
	}
	return out
}

func mean(vals []float64) float64 {
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Registry is a named collection of counters, for exposing server state.
// It is the central per-deployment metrics surface: the master, leaves,
// SmartIndex and the SSD cache register their counters into one registry
// so a single Snapshot shows the whole system's state.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{counters: make(map[string]*Counter)} }

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Register adopts an externally owned counter under the given name, so
// components keep their cheap struct-field counters while still appearing
// in the registry's snapshot. Re-registering a name replaces the binding.
// Nil receivers and nil counters are ignored, so components can register
// unconditionally.
func (r *Registry) Register(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
}

// Snapshot returns a copy of all counter values.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// String renders the snapshot sorted by name.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += fmt.Sprintf("%s=%d ", n, snap[n])
	}
	return s
}
