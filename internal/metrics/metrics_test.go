package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("Value = %d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Errorf("zero gauge = %v", g.Value())
	}
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Errorf("Value = %v", g.Value())
	}
	g.Add(-1.5)
	if g.Value() != 2 {
		t.Errorf("after Add = %v", g.Value())
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 8000 {
		t.Errorf("Value = %v, want 8000", g.Value())
	}
}

// TestHistogram pins the exact small-sample behaviour: below the raw
// retention threshold, quantiles are exact.
func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Error("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Errorf("p99 = %v", got)
	}
	if got := h.Quantile(1.0); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	h.Reset()
	if h.Count() != 0 {
		t.Error("Reset failed")
	}
}

// TestHistogramBoundedMemory is the leak fix's contract: memory is
// O(buckets), not O(observations) — after a million observations, no raw
// values are retained and the bucket array has its fixed size.
func TestHistogramBoundedMemory(t *testing.T) {
	var h Histogram
	for i := 0; i < 1_000_000; i++ {
		h.Observe(float64(i%10_000) + 0.5)
	}
	if h.raw != nil {
		t.Fatalf("raw values retained past the threshold: %d", len(h.raw))
	}
	if len(h.buckets) != histNumBuckets {
		t.Fatalf("bucket array = %d slots, want fixed %d", len(h.buckets), histNumBuckets)
	}
	if h.Count() != 1_000_000 {
		t.Errorf("Count = %d", h.Count())
	}
}

// TestHistogramQuantileAccuracy: bucketed quantiles stay within one
// log-linear bucket (midpoint error ≤ 1/16 ≈ 6.3%) of the exact value,
// and the extremes stay exact.
func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	n := 100_000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %v, want exact min 1", got)
	}
	if got := h.Quantile(1); got != float64(n) {
		t.Errorf("p100 = %v, want exact max %d", got, n)
	}
	if got, want := h.Mean(), float64(n+1)/2; math.Abs(got-want) > 1e-6*want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	maxRel := 1.0/16 + 1e-9
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 0.999} {
		exact := math.Ceil(q * float64(n))
		got := h.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > maxRel {
			t.Errorf("p%v = %v, exact %v, rel err %.3f > %.3f", q*100, got, exact, rel, maxRel)
		}
	}
}

// TestHistogramNonPositive: zeros and negatives cannot live on a log
// scale; they must still be counted and surface through min/quantile(0).
func TestHistogramNonPositive(t *testing.T) {
	var h Histogram
	for i := 0; i < 200; i++ {
		h.Observe(0)
		h.Observe(-2.5)
		h.Observe(1.0)
	}
	if h.Count() != 600 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != -2.5 {
		t.Errorf("Min = %v", h.Min())
	}
	if got := h.Quantile(0.1); got != -2.5 {
		t.Errorf("p10 = %v, want min (non-positive region)", got)
	}
	if got := h.Quantile(1); got != 1 {
		t.Errorf("p100 = %v", got)
	}
}

// TestHistogramSnapshot: cumulative buckets ascend and end at Count, in
// both raw and bucketed mode.
func TestHistogramSnapshot(t *testing.T) {
	for _, n := range []int{50, 50_000} { // below and above the threshold
		var h Histogram
		for i := 1; i <= n; i++ {
			h.Observe(float64(i))
		}
		snap := h.Snapshot()
		if snap.Count != int64(n) {
			t.Fatalf("n=%d: Count = %d", n, snap.Count)
		}
		if len(snap.Buckets) == 0 {
			t.Fatalf("n=%d: no buckets", n)
		}
		prevBound := math.Inf(-1)
		prevCount := int64(0)
		for _, b := range snap.Buckets {
			if b.UpperBound <= prevBound {
				t.Fatalf("n=%d: bucket bounds not ascending: %v then %v", n, prevBound, b.UpperBound)
			}
			if b.Count < prevCount {
				t.Fatalf("n=%d: cumulative counts decreased: %d then %d", n, prevCount, b.Count)
			}
			prevBound, prevCount = b.UpperBound, b.Count
		}
		if prevCount != int64(n) {
			t.Fatalf("n=%d: last cumulative count = %d, want %d", n, prevCount, n)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(i*1000 + j + 1))
				if j%100 == 0 {
					_ = h.Quantile(0.5)
					_ = h.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d", h.Count())
	}
}

// TestWindowMeter: Series holds sealed windows only; the trailing partial
// window is reported separately so callers can tell them apart.
func TestWindowMeter(t *testing.T) {
	m := NewWindowMeter(3)
	for _, v := range []float64{1, 2, 3, 10, 20, 30, 100} {
		m.Observe(v)
	}
	s := m.Series()
	if len(s) != 2 || s[0] != 2 || s[1] != 20 {
		t.Errorf("Series = %v, want sealed windows only [2 20]", s)
	}
	pm, pn := m.Partial()
	if pn != 1 || pm != 100 {
		t.Errorf("Partial = (%v, %d), want (100, 1)", pm, pn)
	}
	// Sealing the partial window moves it into Series.
	m.Observe(200)
	m.Observe(300)
	if s := m.Series(); len(s) != 3 || s[2] != 200 {
		t.Errorf("Series after seal = %v", s)
	}
	if _, pn := m.Partial(); pn != 0 {
		t.Errorf("Partial after exact seal reports n=%d, want 0", pn)
	}
}

func TestWindowMeterDefaultSize(t *testing.T) {
	m := NewWindowMeter(0)
	m.Observe(5)
	if s := m.Series(); len(s) != 0 {
		t.Errorf("Series = %v, want empty (window not sealed)", s)
	}
	if pm, pn := m.Partial(); pn != 1 || pm != 5 {
		t.Errorf("Partial = (%v, %d)", pm, pn)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("a").Inc()
	r.Counter("b").Inc()
	snap := r.Snapshot()
	if snap["a"] != 4 || snap["b"] != 1 {
		t.Errorf("Snapshot = %v", snap)
	}
	s := r.String()
	if !strings.Contains(s, "a=4") || !strings.Contains(s, "b=1") {
		t.Errorf("String = %q", s)
	}
	if strings.Index(s, "a=") > strings.Index(s, "b=") {
		t.Error("String should sort names")
	}
}

// TestRegistryLabeled: identical name+labels return the same metric;
// different labels are distinct samples of one family.
func TestRegistryLabeled(t *testing.T) {
	r := NewRegistry()
	c0 := r.CounterWith("feisu_tasks_total", L("leaf", "leaf0"))
	c1 := r.CounterWith("feisu_tasks_total", L("leaf", "leaf1"))
	if c0 == c1 {
		t.Fatal("different labels must yield different counters")
	}
	if again := r.CounterWith("feisu_tasks_total", L("leaf", "leaf0")); again != c0 {
		t.Fatal("same name+labels must return the same counter")
	}
	c0.Add(2)
	c1.Add(5)
	r.GaugeWith("feisu_bytes", L("leaf", "leaf0")).Set(42)
	r.RegisterGaugeFunc("feisu_ratio", func() float64 { return 0.25 })
	r.HistogramWith("feisu_lat_seconds").Observe(0.5)

	fams := r.Families()
	byName := make(map[string]Family)
	for i, f := range fams {
		byName[f.Name] = f
		if i > 0 && fams[i-1].Name >= f.Name {
			t.Errorf("families not sorted: %q before %q", fams[i-1].Name, f.Name)
		}
	}
	tasks, ok := byName["feisu_tasks_total"]
	if !ok || len(tasks.Samples) != 2 {
		t.Fatalf("feisu_tasks_total family = %+v", tasks)
	}
	if tasks.Samples[0].Labels[0].Value != "leaf0" || tasks.Samples[0].Value != 2 {
		t.Errorf("sample ordering/value wrong: %+v", tasks.Samples)
	}
	if g := byName["feisu_ratio"]; g.Type != TypeGauge || g.Samples[0].Value != 0.25 {
		t.Errorf("gauge func family = %+v", g)
	}
	if h := byName["feisu_lat_seconds"]; h.Type != TypeHistogram || h.Samples[0].Hist.Count != 1 {
		t.Errorf("histogram family = %+v", h)
	}
}

// TestRegistryFamiliesIncludeFlat: legacy dotted counters surface in
// Families under sanitized names.
func TestRegistryFamiliesIncludeFlat(t *testing.T) {
	r := NewRegistry()
	r.Counter("leaf0.index.hits").Add(7)
	for _, f := range r.Families() {
		if f.Name == "leaf0_index_hits" {
			if f.Samples[0].Value != 7 {
				t.Errorf("value = %v", f.Samples[0].Value)
			}
			return
		}
	}
	t.Fatal("flat counter missing from Families")
}
