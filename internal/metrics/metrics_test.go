package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("Value = %d, want 8000", c.Value())
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Error("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Errorf("p99 = %v", got)
	}
	if got := h.Quantile(1.0); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	h.Reset()
	if h.Count() != 0 {
		t.Error("Reset failed")
	}
}

func TestWindowMeter(t *testing.T) {
	m := NewWindowMeter(3)
	for _, v := range []float64{1, 2, 3, 10, 20, 30, 100} {
		m.Observe(v)
	}
	s := m.Series()
	if len(s) != 3 || s[0] != 2 || s[1] != 20 || s[2] != 100 {
		t.Errorf("Series = %v", s)
	}
}

func TestWindowMeterDefaultSize(t *testing.T) {
	m := NewWindowMeter(0)
	m.Observe(5)
	if s := m.Series(); len(s) != 1 || s[0] != 5 {
		t.Errorf("Series = %v", s)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("a").Inc()
	r.Counter("b").Inc()
	snap := r.Snapshot()
	if snap["a"] != 4 || snap["b"] != 1 {
		t.Errorf("Snapshot = %v", snap)
	}
	s := r.String()
	if !strings.Contains(s, "a=4") || !strings.Contains(s, "b=1") {
		t.Errorf("String = %q", s)
	}
	if strings.Index(s, "a=") > strings.Index(s, "b=") {
		t.Error("String should sort names")
	}
}
