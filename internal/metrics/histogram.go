package metrics

import (
	"math"
	"sort"
	"sync"
)

// Histogram bucket geometry. Buckets are log-linear: 8 linear sub-buckets
// per power of two, covering 2^histMinExp .. 2^histMaxExp. Reporting a
// bucket's midpoint bounds the relative quantile error by 1/16 ≈ 6.3%.
// The footprint is fixed at histNumBuckets uint32 slots (~2 KB) regardless
// of how many values are observed.
const (
	// histExactLimit is the raw-retention threshold: histograms with at
	// most this many observations keep the raw values and report exact
	// quantiles; past it they fold into the fixed bucket array.
	histExactLimit = 128

	histSubBuckets = 8
	histMinExp     = -34 // 2^-34 ≈ 58 ps when values are seconds
	histMaxExp     = 30  // 2^30 ≈ 34 years when values are seconds
	histNumBuckets = (histMaxExp - histMinExp) * histSubBuckets
)

// Histogram records float64 observations and reports count, mean and
// quantiles. Memory is bounded: up to histExactLimit raw values are kept
// for exact small-sample quantiles; beyond that, observations live in a
// fixed array of log-spaced buckets (O(buckets), not O(observations)),
// and quantiles become approximate within one bucket's width. Mean, Count,
// Sum, Min and Max stay exact at every size. The zero value is ready to use.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	// raw holds the values while count <= histExactLimit; nil afterwards.
	raw []float64
	// buckets[i] counts observations in log bucket i; allocated lazily on
	// the first observation past histExactLimit. under counts observations
	// <= 0 (or below the smallest bucket), which log buckets cannot hold.
	buckets []uint32
	under   int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.buckets == nil && h.count <= histExactLimit {
		h.raw = append(h.raw, v)
		h.mu.Unlock()
		return
	}
	if h.buckets == nil {
		// Crossing the threshold: fold the retained raw values into the
		// fixed bucket array and drop them.
		h.buckets = make([]uint32, histNumBuckets)
		for _, rv := range h.raw {
			h.bucketize(rv)
		}
		h.raw = nil
	}
	h.bucketize(v)
	h.mu.Unlock()
}

// bucketize adds one value to the bucket array. Caller holds h.mu and has
// ensured h.buckets is allocated.
func (h *Histogram) bucketize(v float64) {
	idx, ok := bucketIndex(v)
	if !ok {
		h.under++
		return
	}
	h.buckets[idx]++
}

// bucketIndex maps a value to its log bucket, or ok=false for values the
// log scale cannot represent (v <= 0 or below the smallest bucket; values
// above the largest bucket clamp into it).
func bucketIndex(v float64) (int, bool) {
	if v <= 0 {
		return 0, false
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	octave := exp - 1          // floor(log2 v)
	if octave < histMinExp {
		return 0, false
	}
	if octave >= histMaxExp {
		return histNumBuckets - 1, true
	}
	sub := int((frac - 0.5) * 2 * histSubBuckets)
	if sub >= histSubBuckets {
		sub = histSubBuckets - 1
	}
	return (octave-histMinExp)*histSubBuckets + sub, true
}

// bucketUpper returns bucket i's exclusive upper bound. Sub-buckets are
// linear within an octave (HDR-histogram style, matching bucketIndex):
// bucket (octave, sub) spans [2^octave·(1+sub/8), 2^octave·(1+(sub+1)/8)).
func bucketUpper(i int) float64 {
	octave := i/histSubBuckets + histMinExp
	sub := i % histSubBuckets
	return math.Exp2(float64(octave)) * (1 + float64(sub+1)/histSubBuckets)
}

// bucketMid returns bucket i's midpoint, the representative value reported
// for quantiles that land inside it (≤ 1/16 ≈ 6.3% relative error).
func bucketMid(i int) float64 {
	octave := i/histSubBuckets + histMinExp
	sub := i % histSubBuckets
	return math.Exp2(float64(octave)) * (1 + (float64(sub)+0.5)/histSubBuckets)
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the q-quantile (0 <= q <= 1), or 0 with no
// observations. Exact while at most histExactLimit values have been
// observed; within one log-linear bucket (≤6.3% relative) afterwards. The extremes
// stay exact at every size: Quantile(0) == Min, Quantile(1) == Max.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank >= h.count {
		return h.max
	}
	if rank == 1 {
		return h.min
	}
	if h.buckets == nil {
		sorted := append([]float64(nil), h.raw...)
		sort.Float64s(sorted)
		return sorted[rank-1]
	}
	cum := h.under
	if cum >= rank {
		return h.min
	}
	for i, n := range h.buckets {
		cum += int64(n)
		if cum >= rank {
			mid := bucketMid(i)
			// Clamp to the observed range so bucket midpoints never
			// report values outside [min, max].
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// Min returns the smallest observation (0 with none).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (0 with none).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Reset discards all observations and returns to exact (raw) mode.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.count, h.sum, h.min, h.max, h.under = 0, 0, 0, 0, 0
	h.raw = nil
	h.buckets = nil
	h.mu.Unlock()
}

// Bucket is one cumulative histogram bucket: Count observations were <=
// UpperBound.
type Bucket struct {
	UpperBound float64
	Count      int64
}

// HistogramSnapshot is a point-in-time copy of a histogram for export.
// Buckets are cumulative with strictly ascending upper bounds; only bucket
// boundaries where the count grows are included (the encoder adds the
// implicit le="+Inf" = Count bucket).
type HistogramSnapshot struct {
	Count   int64
	Sum     float64
	Min     float64
	Max     float64
	Buckets []Bucket
}

// Snapshot captures the histogram for export. It bucketizes raw-mode
// values through the same log scale so the exposition shape is identical
// before and after the exact-retention threshold.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count == 0 {
		return snap
	}
	var counts []uint32
	under := h.under
	if h.buckets != nil {
		counts = h.buckets
	} else {
		counts = make([]uint32, histNumBuckets)
		for _, v := range h.raw {
			if idx, ok := bucketIndex(v); ok {
				counts[idx]++
			} else {
				under++
			}
		}
	}
	cum := under
	for i, n := range counts {
		if n == 0 {
			continue
		}
		cum += int64(n)
		snap.Buckets = append(snap.Buckets, Bucket{UpperBound: bucketUpper(i), Count: cum})
	}
	if under > 0 {
		// Values <= 0 (or below the scale) appear as a leading bucket at
		// the smallest representable bound.
		low := Bucket{UpperBound: bucketUpper(0) / 2, Count: under}
		snap.Buckets = append([]Bucket{low}, snap.Buckets...)
	}
	return snap
}
