package sqltest

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func i(v int64) types.Value  { return types.NewInt(v) }
func s(v string) types.Value { return types.NewString(v) }
func null() types.Value      { return types.NullValue() }

func fixture() (*Table, *Table) {
	f := &Table{
		Name: "f",
		Schema: types.MustSchema(
			types.Field{Name: "id", Type: types.Int64},
			types.Field{Name: "k", Type: types.Int64},
			types.Field{Name: "v", Type: types.Int64},
		),
		Rows: []types.Row{
			{i(1), i(10), i(100)},
			{i(2), i(20), i(200)},
			{i(3), null(), i(300)},
			{i(4), i(10), i(400)},
			{i(5), i(99), i(500)},
		},
	}
	d := &Table{
		Name: "d",
		Schema: types.MustSchema(
			types.Field{Name: "k", Type: types.Int64},
			types.Field{Name: "name", Type: types.String},
		),
		Rows: []types.Row{
			{i(10), s("ten")},
			{i(20), s("twenty")},
			{i(30), s("thirty")},
		},
	}
	return f, d
}

func render(t *testing.T, res *Result) string {
	t.Helper()
	lines := make([]string, len(res.Rows))
	for ri, row := range res.Rows {
		parts := make([]string, len(row))
		for ci, v := range row {
			parts[ci] = v.String()
		}
		lines[ri] = strings.Join(parts, "|")
	}
	return strings.Join(lines, "\n")
}

func mustRun(t *testing.T, sql string, tables ...*Table) *Result {
	t.Helper()
	res, err := Run(sql, tables...)
	if err != nil {
		t.Fatalf("Run(%q): %v", sql, err)
	}
	return res
}

func TestInnerJoin(t *testing.T) {
	f, d := fixture()
	res := mustRun(t, "SELECT f.id, d.name FROM f JOIN d ON f.k = d.k ORDER BY f.id", f, d)
	want := "1|\"ten\"\n2|\"twenty\"\n4|\"ten\""
	if got := render(t, res); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestCommaJoinEqualsInnerJoin(t *testing.T) {
	f, d := fixture()
	a := mustRun(t, "SELECT f.id, d.name FROM f, d WHERE f.k = d.k ORDER BY f.id", f, d)
	b := mustRun(t, "SELECT f.id, d.name FROM f JOIN d ON f.k = d.k ORDER BY f.id", f, d)
	if render(t, a) != render(t, b) {
		t.Fatalf("comma join diverged from JOIN ON:\n%s\nvs\n%s", render(t, a), render(t, b))
	}
}

func TestLeftOuterJoinNullExtends(t *testing.T) {
	f, d := fixture()
	res := mustRun(t, "SELECT f.id, d.name FROM f LEFT OUTER JOIN d ON f.k = d.k ORDER BY f.id", f, d)
	// Rows 3 (NULL key) and 5 (no dim match) null-extend.
	want := "1|\"ten\"\n2|\"twenty\"\n3|NULL\n4|\"ten\"\n5|NULL"
	if got := render(t, res); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestRightOuterJoinEmitsUnmatchedRight(t *testing.T) {
	f, d := fixture()
	res := mustRun(t, "SELECT f.id, d.name FROM f RIGHT OUTER JOIN d ON f.k = d.k ORDER BY d.name, f.id", f, d)
	// d.k=30 never matches: null-extended fact side.
	want := "1|\"ten\"\n4|\"ten\"\nNULL|\"thirty\"\n2|\"twenty\""
	if got := render(t, res); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestGroupByWithAggregates(t *testing.T) {
	f, d := fixture()
	res := mustRun(t,
		"SELECT d.name, COUNT(*) AS c, SUM(f.v) AS sv FROM f JOIN d ON f.k = d.k GROUP BY d.name ORDER BY d.name",
		f, d)
	want := "\"ten\"|2|500\n\"twenty\"|1|200"
	if got := render(t, res); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	f, d := fixture()
	res := mustRun(t,
		"SELECT d.name, COUNT(*) AS c FROM f JOIN d ON f.k = d.k GROUP BY d.name HAVING COUNT(*) > 1",
		f, d)
	want := "\"ten\"|2"
	if got := render(t, res); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestGlobalAggregateOverNoRows(t *testing.T) {
	f, d := fixture()
	res := mustRun(t, "SELECT COUNT(*), SUM(f.v) FROM f JOIN d ON f.k = d.k WHERE f.v > 99999", f, d)
	// COUNT over zero rows is 0; SUM is NULL.
	want := "0|NULL"
	if got := render(t, res); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestOrderByAliasAndLimit(t *testing.T) {
	f, d := fixture()
	res := mustRun(t, "SELECT f.id AS fid, f.v AS fv FROM f, d WHERE f.k = d.k ORDER BY fv DESC, fid LIMIT 2", f, d)
	want := "4|400\n2|200"
	if got := render(t, res); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestAvgAndMinMax(t *testing.T) {
	f, _ := fixture()
	res := mustRun(t, "SELECT AVG(v), MIN(v), MAX(v) FROM f", f)
	want := "300.000000|100|500"
	got := render(t, res)
	if !strings.HasPrefix(got, "300") || !strings.HasSuffix(got, "100|500") {
		t.Fatalf("got %q, want AVG 300, MIN 100, MAX 500 (rendered %q)", got, want)
	}
}

func TestIsNullPredicate(t *testing.T) {
	f, _ := fixture()
	res := mustRun(t, "SELECT id FROM f WHERE k IS NULL", f)
	if got := render(t, res); got != "3" {
		t.Fatalf("got %q, want row 3", got)
	}
	res = mustRun(t, "SELECT COUNT(*) FROM f WHERE k IS NOT NULL", f)
	if got := render(t, res); got != "4" {
		t.Fatalf("got %q, want 4", got)
	}
}

func TestErrors(t *testing.T) {
	f, d := fixture()
	for _, q := range []string{
		"SELECT * FROM f",
		"SELECT x.id FROM f",
		"SELECT k FROM f JOIN d ON f.k = d.k", // ambiguous bare column
		"SELECT id FROM nope",
	} {
		if _, err := Run(q, f, d); err == nil {
			t.Errorf("Run(%q): expected error, got none", q)
		}
	}
}
