// Package sqltest is the correctness oracle for the differential test
// harness: a deliberately naive single-process SQL executor that shares
// only the expression evaluator and aggregate cells with the engine. Joins
// are nested loops, grouping is a flat hash table, and nothing is
// distributed, partitioned, shuffled, cached or cost-modeled — so when the
// cluster (broadcast or repartition path, with retries and spills) and
// this executor disagree on a query, the bug is in the machinery the
// cluster added, which is exactly what the harness wants to catch.
package sqltest

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

// Table is one input relation: a schema and its rows, fully in memory.
type Table struct {
	Name   string
	Schema *types.Schema
	Rows   []types.Row
}

// Result is the reference answer. Row order is deterministic for ordered
// queries and insertion-ordered otherwise; differential comparisons should
// treat unordered results as bags.
type Result struct {
	Columns []string
	Rows    [][]types.Value
}

// Run parses and executes sql against the given tables.
//
// Supported subset (matching what the engine's analyzer accepts and the
// query generator emits): FROM with comma cross products, INNER/CROSS/LEFT
// OUTER/RIGHT OUTER JOIN with ON, WHERE, aggregates
// COUNT/SUM/AVG/MIN/MAX, GROUP BY, HAVING, ORDER BY (select aliases
// allowed), LIMIT. SELECT * and WITHIN aggregates are not supported.
func Run(sql string, tables ...*Table) (*Result, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	if stmt.Explain {
		return nil, fmt.Errorf("sqltest: EXPLAIN not supported")
	}
	byName := make(map[string]*Table, len(tables))
	for _, t := range tables {
		byName[t.Name] = t
	}

	// Resolve sources: FROM entries first (comma = cross product), then
	// the JOIN chain, in order.
	var sources []source
	addRef := func(ref sqlparser.TableRef) (*Table, error) {
		t, ok := byName[ref.Name]
		if !ok {
			return nil, fmt.Errorf("sqltest: unknown table %q", ref.Name)
		}
		b := ref.Binding()
		for _, s := range sources {
			if s.binding == b {
				return nil, fmt.Errorf("sqltest: duplicate binding %q", b)
			}
		}
		sources = append(sources, source{binding: b, schema: t.Schema})
		return t, nil
	}
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("sqltest: query has no FROM")
	}

	// Rewrite GROUP BY / ORDER BY select-alias references to the aliased
	// expressions, as the engine's analyzer does, before binding columns.
	for i, g := range stmt.GroupBy {
		stmt.GroupBy[i] = resolveAlias(g, stmt.Items)
	}
	for i := range stmt.OrderBy {
		stmt.OrderBy[i].Expr = resolveAlias(stmt.OrderBy[i].Expr, stmt.Items)
	}

	// Build the joined row set with nested loops.
	first, err := addRef(stmt.From[0])
	if err != nil {
		return nil, err
	}
	cur := make([][]types.Row, 0, len(first.Rows))
	for _, r := range first.Rows {
		cur = append(cur, []types.Row{r})
	}
	for _, ref := range stmt.From[1:] {
		t, err := addRef(ref)
		if err != nil {
			return nil, err
		}
		cur, err = joinStep(cur, sources, t, sqlparser.JoinCross, nil)
		if err != nil {
			return nil, err
		}
	}
	for _, j := range stmt.Joins {
		t, err := addRef(j.Table)
		if err != nil {
			return nil, err
		}
		if err := bindColumns(j.On, sources); err != nil {
			return nil, err
		}
		cur, err = joinStep(cur, sources, t, j.Type, j.On)
		if err != nil {
			return nil, err
		}
	}

	// Bind every remaining expression now that all sources are known.
	for _, it := range stmt.Items {
		if it.Star {
			return nil, fmt.Errorf("sqltest: SELECT * not supported")
		}
		if err := bindColumns(it.Expr, sources); err != nil {
			return nil, err
		}
	}
	for _, e := range stmt.GroupBy {
		if err := bindColumns(e, sources); err != nil {
			return nil, err
		}
	}
	for _, o := range stmt.OrderBy {
		if err := bindColumns(o.Expr, sources); err != nil {
			return nil, err
		}
	}
	if err := bindColumns(stmt.Where, sources); err != nil {
		return nil, err
	}
	if err := bindColumns(stmt.Having, sources); err != nil {
		return nil, err
	}

	// WHERE.
	if stmt.Where != nil {
		kept := cur[:0]
		for _, c := range cur {
			ok, err := exec.EvalBool(stmt.Where, &rowEnv{sources: sources, rows: c})
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, c)
			}
		}
		cur = kept
	}

	// Collect aggregate calls (dedup by rendered form, first-seen order).
	var aggs []*sqlparser.FuncCall
	seen := make(map[string]bool)
	collect := func(e sqlparser.Expr) {
		walkExpr(e, func(n sqlparser.Expr) {
			if f, ok := n.(*sqlparser.FuncCall); ok && f.Within == nil && !f.WithinRecord {
				if k := f.String(); !seen[k] {
					seen[k] = true
					aggs = append(aggs, f)
				}
			}
		})
	}
	for _, it := range stmt.Items {
		collect(it.Expr)
	}
	collect(stmt.Having)
	for _, o := range stmt.OrderBy {
		collect(o.Expr)
	}

	res := &Result{}
	for _, it := range stmt.Items {
		name := it.Alias
		if name == "" {
			name = it.Expr.String()
		}
		res.Columns = append(res.Columns, name)
	}

	if len(aggs) > 0 || len(stmt.GroupBy) > 0 || stmt.Having != nil {
		return finishAgg(stmt, sources, cur, aggs, res)
	}
	return finishScalar(stmt, sources, cur, res)
}

// source is one resolved FROM/JOIN binding.
type source struct {
	binding string
	schema  *types.Schema
}

// joinStep joins the accumulated rows against tbl (the just-appended
// source) with nested loops. A nil entry in a combined row marks a
// null-extended side, as produced by outer joins.
func joinStep(cur [][]types.Row, sources []source, tbl *Table, jt sqlparser.JoinType, on sqlparser.Expr) ([][]types.Row, error) {
	match := func(c []types.Row, r types.Row) (bool, error) {
		if on == nil {
			return true, nil
		}
		env := &rowEnv{sources: sources, rows: append(append([]types.Row{}, c...), r)}
		return exec.EvalBool(on, env)
	}
	extend := func(c []types.Row, r types.Row) []types.Row {
		out := make([]types.Row, len(c)+1)
		copy(out, c)
		out[len(c)] = r
		return out
	}
	var next [][]types.Row
	switch jt {
	case sqlparser.JoinInner, sqlparser.JoinCross:
		for _, c := range cur {
			for _, r := range tbl.Rows {
				ok, err := match(c, r)
				if err != nil {
					return nil, err
				}
				if ok {
					next = append(next, extend(c, r))
				}
			}
		}
	case sqlparser.JoinLeftOuter:
		for _, c := range cur {
			matched := false
			for _, r := range tbl.Rows {
				ok, err := match(c, r)
				if err != nil {
					return nil, err
				}
				if ok {
					matched = true
					next = append(next, extend(c, r))
				}
			}
			if !matched {
				next = append(next, extend(c, nil))
			}
		}
	case sqlparser.JoinRightOuter:
		rightMatched := make([]bool, len(tbl.Rows))
		for _, c := range cur {
			for i, r := range tbl.Rows {
				ok, err := match(c, r)
				if err != nil {
					return nil, err
				}
				if ok {
					rightMatched[i] = true
					next = append(next, extend(c, r))
				}
			}
		}
		for i, r := range tbl.Rows {
			if !rightMatched[i] {
				next = append(next, extend(make([]types.Row, len(sources)-1), r))
			}
		}
	default:
		return nil, fmt.Errorf("sqltest: unsupported join type %v", jt)
	}
	return next, nil
}

// finishScalar evaluates the select list per joined row, then orders and
// limits.
func finishScalar(stmt *sqlparser.SelectStmt, sources []source, cur [][]types.Row, res *Result) (*Result, error) {
	rows := make([]decoratedRow, 0, len(cur))
	for _, c := range cur {
		env := &rowEnv{sources: sources, rows: c}
		d := decoratedRow{out: make([]types.Value, len(stmt.Items))}
		for i, it := range stmt.Items {
			v, err := exec.Eval(it.Expr, env)
			if err != nil {
				return nil, err
			}
			d.out[i] = v
		}
		for _, o := range stmt.OrderBy {
			v, err := exec.Eval(o.Expr, env)
			if err != nil {
				return nil, err
			}
			d.keys = append(d.keys, v)
		}
		rows = append(rows, d)
	}
	return orderAndLimit(stmt, rows, res)
}

// finishAgg groups the joined rows, finalizes aggregate cells, applies
// HAVING, evaluates the select list per group, then orders and limits.
func finishAgg(stmt *sqlparser.SelectStmt, sources []source, cur [][]types.Row, aggs []*sqlparser.FuncCall, res *Result) (*Result, error) {
	type refGroup struct {
		keys  []types.Value
		cells []exec.Cell
	}
	groups := make(map[string]*refGroup)
	var order []string
	for _, c := range cur {
		env := &rowEnv{sources: sources, rows: c}
		keys := make([]types.Value, len(stmt.GroupBy))
		for i, g := range stmt.GroupBy {
			v, err := exec.Eval(g, env)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		k := exec.GroupKey(keys)
		grp, ok := groups[k]
		if !ok {
			grp = &refGroup{keys: keys, cells: make([]exec.Cell, len(aggs))}
			groups[k] = grp
			order = append(order, k)
		}
		for i, f := range aggs {
			if f.Star {
				grp.cells[i].Update(types.Value{}, true)
				continue
			}
			if len(f.Args) != 1 {
				return nil, fmt.Errorf("sqltest: aggregate %s wants one argument", f.Name)
			}
			v, err := exec.Eval(f.Args[0], env)
			if err != nil {
				return nil, err
			}
			grp.cells[i].Update(v, false)
		}
	}
	// A global aggregation over zero rows still produces one group.
	if len(groups) == 0 && len(stmt.GroupBy) == 0 {
		k := exec.GroupKey(nil)
		groups[k] = &refGroup{cells: make([]exec.Cell, len(aggs))}
		order = append(order, k)
	}

	var rows []decoratedRow
	for _, k := range order {
		grp := groups[k]
		subs := make(map[string]types.Value, len(aggs)+len(grp.keys))
		for i, f := range aggs {
			v, err := grp.cells[i].Final(f.Name)
			if err != nil {
				return nil, err
			}
			subs[f.String()] = v
		}
		for i, g := range stmt.GroupBy {
			subs[g.String()] = grp.keys[i]
		}
		env := &subEnv{subs: subs}
		if stmt.Having != nil {
			ok, err := exec.EvalBool(stmt.Having, env)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		d := decoratedRow{out: make([]types.Value, len(stmt.Items))}
		for i, it := range stmt.Items {
			v, err := exec.Eval(it.Expr, env)
			if err != nil {
				return nil, err
			}
			d.out[i] = v
		}
		for _, o := range stmt.OrderBy {
			v, err := exec.Eval(o.Expr, env)
			if err != nil {
				return nil, err
			}
			d.keys = append(d.keys, v)
		}
		rows = append(rows, d)
	}
	return orderAndLimit(stmt, rows, res)
}

// decoratedRow pairs an output row with its precomputed ORDER BY keys.
type decoratedRow struct {
	out  []types.Value
	keys []types.Value
}

// orderAndLimit sorts decorated rows by their ORDER BY keys, applies
// LIMIT, and fills the result.
func orderAndLimit(stmt *sqlparser.SelectStmt, rows []decoratedRow, res *Result) (*Result, error) {
	var sortErr error
	if len(stmt.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for k, o := range stmt.OrderBy {
				cmp, err := types.Compare(rows[i].keys[k], rows[j].keys[k])
				if err != nil {
					sortErr = err
					return false
				}
				if cmp == 0 {
					continue
				}
				if o.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	if stmt.Limit >= 0 && int64(len(rows)) > stmt.Limit {
		rows = rows[:stmt.Limit]
	}
	res.Rows = make([][]types.Value, len(rows))
	for i, d := range rows {
		res.Rows[i] = d.out
	}
	return res, nil
}

// rowEnv exposes one joined row to the expression evaluator. A nil
// per-source row (outer-join null extension) yields NULL for every column
// of that source.
type rowEnv struct {
	sources []source
	rows    []types.Row
}

// Col implements exec.Env.
func (e *rowEnv) Col(table, col string) (types.Value, error) {
	if table != "" {
		for i, s := range e.sources {
			if s.binding != table {
				continue
			}
			idx := s.schema.Index(col)
			if idx < 0 {
				return types.Value{}, fmt.Errorf("sqltest: unknown column %s.%s", table, col)
			}
			if i >= len(e.rows) || e.rows[i] == nil {
				return types.NullValue(), nil
			}
			return e.rows[i][idx], nil
		}
		return types.Value{}, fmt.Errorf("sqltest: unknown binding %q", table)
	}
	found, fidx := -1, -1
	for i, s := range e.sources {
		if idx := s.schema.Index(col); idx >= 0 {
			if found >= 0 {
				return types.Value{}, fmt.Errorf("sqltest: ambiguous column %q", col)
			}
			found, fidx = i, idx
		}
	}
	if found < 0 {
		return types.Value{}, fmt.Errorf("sqltest: unknown column %q", col)
	}
	if found >= len(e.rows) || e.rows[found] == nil {
		return types.NullValue(), nil
	}
	return e.rows[found][fidx], nil
}

// Repeated implements exec.Env; the reference subset has no repeated
// columns.
func (e *rowEnv) Repeated(table, col string) ([]types.Value, error) {
	return nil, fmt.Errorf("sqltest: repeated column %s.%s unsupported", table, col)
}

// Sub implements exec.Env.
func (e *rowEnv) Sub(sqlparser.Expr) (types.Value, bool) { return types.Value{}, false }

// subEnv substitutes finalized aggregate values and group keys into
// post-grouping expressions, mirroring the engine's master-side finalizer.
type subEnv struct {
	subs map[string]types.Value
}

// Col implements exec.Env: any column surviving to this point must be a
// grouping key, which the substitution map already resolved.
func (e *subEnv) Col(table, col string) (types.Value, error) {
	name := col
	if table != "" {
		name = table + "." + col
	}
	return types.Value{}, fmt.Errorf("sqltest: column %s referenced outside GROUP BY", name)
}

// Repeated implements exec.Env.
func (e *subEnv) Repeated(table, col string) ([]types.Value, error) {
	return nil, fmt.Errorf("sqltest: repeated column %s.%s in aggregate context", table, col)
}

// Sub implements exec.Env.
func (e *subEnv) Sub(expr sqlparser.Expr) (types.Value, bool) {
	v, ok := e.subs[expr.String()]
	return v, ok
}

// resolveAlias maps a bare single-part column reference that names a
// select alias to the aliased expression (GROUP BY c / ORDER BY c).
func resolveAlias(e sqlparser.Expr, items []sqlparser.SelectItem) sqlparser.Expr {
	ref, ok := e.(*sqlparser.ColumnRef)
	if !ok || len(ref.Parts) != 1 {
		return e
	}
	for _, it := range items {
		if it.Alias != "" && it.Alias == ref.Parts[0] {
			return it.Expr
		}
	}
	return e
}

// bindColumns fills ColumnRef.Table/Column from the written parts,
// validating against the resolved sources. nil expressions are fine.
func bindColumns(e sqlparser.Expr, sources []source) error {
	var bindErr error
	walkExpr(e, func(n sqlparser.Expr) {
		ref, ok := n.(*sqlparser.ColumnRef)
		if !ok || bindErr != nil || ref.Column != "" {
			return
		}
		switch len(ref.Parts) {
		case 1:
			ref.Column = ref.Parts[0]
		case 2:
			ref.Table, ref.Column = ref.Parts[0], ref.Parts[1]
			found := false
			for _, s := range sources {
				if s.binding == ref.Table {
					found = true
					break
				}
			}
			if !found {
				bindErr = fmt.Errorf("sqltest: unknown binding %q", ref.Table)
			}
		default:
			bindErr = fmt.Errorf("sqltest: cannot bind %s", ref)
		}
	})
	return bindErr
}

// walkExpr visits every node of an expression tree, parent first.
func walkExpr(e sqlparser.Expr, fn func(sqlparser.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *sqlparser.NegExpr:
		walkExpr(x.X, fn)
	case *sqlparser.NotExpr:
		walkExpr(x.X, fn)
	case *sqlparser.IsNullExpr:
		walkExpr(x.X, fn)
	case *sqlparser.BinaryExpr:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	}
}
