package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// LogEntry is one query in the synthetic user log.
type LogEntry struct {
	Time time.Time
	User int
	SQL  string
	// Columns are the data columns the query touches.
	Columns []string
	// Predicates are the canonical conjunctive-form atoms of the WHERE
	// clause (the identity SmartIndex keys on).
	Predicates []string
	// Kind labels the statement shape for the Fig. 8 keyword histogram.
	Kind string
}

// LogConfig shapes the synthetic query log. The defaults are fitted so the
// analyzers reproduce the curves of paper Figs. 4/5/8.
type LogConfig struct {
	Seed  int64
	Start time.Time
	// Duration covers the paper's two-month trace when left zero.
	Duration time.Duration
	// Users is the active analyst population (paper §VII: ~150).
	Users int
	// QueriesPerDay matches "five thousands of queries on average every
	// day" scaled to the analysis horizon.
	QueriesPerDay int
	// SessionLength is the mean number of queries a trial-and-error
	// session issues (start broad, add predicates one by one, §IV-A).
	SessionLength int
	// ColumnZipfS skews column popularity (>1; higher = hotter head).
	ColumnZipfS float64
	// PredicateReuse is the probability a new session reuses a predicate
	// pool recently used by the same user community.
	PredicateReuse float64
	// TableName is the table queries target.
	TableName string
}

// DefaultLogConfig returns the fitted configuration.
func DefaultLogConfig() LogConfig {
	return LogConfig{
		Seed:           7,
		Start:          time.Date(2016, 9, 1, 0, 0, 0, 0, time.UTC),
		Duration:       60 * 24 * time.Hour,
		Users:          150,
		QueriesPerDay:  5000,
		SessionLength:  6,
		ColumnZipfS:    1.4,
		PredicateReuse: 0.6,
		TableName:      "T1",
	}
}

// queryColumns are the columns sessions draw from (the queryable head of
// the schema).
var queryColumns = []string{"clicks", "pos", "dwell", "score", "uid", "query", "url", "region", "spam", "ts"}

// GenerateLog produces the synthetic query log.
func GenerateLog(cfg LogConfig) []LogEntry {
	if cfg.Duration <= 0 {
		cfg.Duration = 60 * 24 * time.Hour
	}
	if cfg.Users <= 0 {
		cfg.Users = 150
	}
	if cfg.QueriesPerDay <= 0 {
		cfg.QueriesPerDay = 5000
	}
	if cfg.SessionLength <= 0 {
		cfg.SessionLength = 6
	}
	if cfg.ColumnZipfS <= 1 {
		cfg.ColumnZipfS = 1.4
	}
	if cfg.TableName == "" {
		cfg.TableName = "T1"
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	colZipf := rand.NewZipf(rng, cfg.ColumnZipfS, 1, uint64(len(queryColumns)-1))

	total := int(float64(cfg.QueriesPerDay) * cfg.Duration.Hours() / 24)
	gap := cfg.Duration / time.Duration(total+1)
	var out []LogEntry

	// recentPools holds predicate pools used lately; sessions reuse them
	// with probability PredicateReuse, producing the paper's query
	// similarity inside short windows.
	var recentPools [][]atomSpec
	now := cfg.Start
	for len(out) < total {
		user := rng.Intn(cfg.Users)
		var pool []atomSpec
		if len(recentPools) > 0 && rng.Float64() < cfg.PredicateReuse {
			pool = recentPools[rng.Intn(len(recentPools))]
		} else {
			pool = newAtomPool(rng, colZipf)
			recentPools = append(recentPools, pool)
			if len(recentPools) > 24 { // pools age out of fashion
				recentPools = recentPools[1:]
			}
		}
		// One trial-and-error session: first a broad aggregation, then
		// predicates accumulate one by one.
		sessionLen := 1 + rng.Intn(2*cfg.SessionLength)
		target := queryColumns[int(colZipf.Uint64())]
		for q := 0; q < sessionLen && len(out) < total; q++ {
			nPred := q
			if nPred > len(pool) {
				nPred = len(pool)
			}
			entry := buildQuery(cfg.TableName, target, pool[:nPred], rng)
			entry.Time = now
			entry.User = user
			out = append(out, entry)
			now = now.Add(gap)
		}
	}
	return out
}

// atomSpec is one reusable predicate atom.
type atomSpec struct {
	col string
	op  string
	val string
}

// String renders the atom in the planner's canonical key form: strings are
// Go-quoted, booleans lower-cased (see plan.Atom.Key).
func (a atomSpec) String() string {
	val := a.val
	switch {
	case strings.HasPrefix(val, "'"):
		val = strconv.Quote(strings.ReplaceAll(val[1:len(val)-1], "''", "'"))
	case val == "TRUE":
		val = "true"
	case val == "FALSE":
		val = "false"
	}
	return a.col + " " + a.op + " " + val
}

// newAtomPool draws a small predicate vocabulary for a session topic.
func newAtomPool(rng *rand.Rand, colZipf *rand.Zipf) []atomSpec {
	n := 2 + rng.Intn(3)
	pool := make([]atomSpec, 0, n)
	for i := 0; i < n; i++ {
		col := queryColumns[int(colZipf.Uint64())]
		pool = append(pool, newAtom(rng, col))
	}
	return pool
}

func newAtom(rng *rand.Rand, col string) atomSpec {
	ops := []string{">", ">=", "<", "<=", "="}
	switch col {
	case "query", "url", "region":
		vals := map[string][]string{
			"query":  {"'weather'", "'music'", "'spam offer'", "'news'"},
			"url":    {"'http://site-1.example'", "'http://site-2.example'"},
			"region": {"'bj'", "'sh'", "'gz'"},
		}[col]
		op := "="
		if col != "region" && rng.Intn(2) == 0 {
			op = "CONTAINS"
		}
		return atomSpec{col: col, op: op, val: vals[rng.Intn(len(vals))]}
	case "spam":
		return atomSpec{col: col, op: "=", val: []string{"TRUE", "FALSE"}[rng.Intn(2)]}
	case "dwell", "score":
		// Canonical float rendering so the log's predicate strings match
		// the planner's atom keys exactly ("7", not "7.0").
		v := math.Round(rng.Float64()*100) / 10
		return atomSpec{col: col, op: ops[rng.Intn(4)], val: strconv.FormatFloat(v, 'g', -1, 64)}
	default:
		return atomSpec{col: col, op: ops[rng.Intn(len(ops))], val: fmt.Sprintf("%d", rng.Intn(20))}
	}
}

// buildQuery renders one statement of the paper's scan-query shape
// (§VI-B): SELECT a FROM T WHERE b OP v [AND|OR c OP v], most of them
// aggregations.
func buildQuery(table, target string, atoms []atomSpec, rng *rand.Rand) LogEntry {
	e := LogEntry{Columns: []string{target}}
	var sel string
	switch rng.Intn(10) {
	case 0, 1, 2:
		sel = target
		e.Kind = "scan"
	case 3:
		sel = "SUM(" + numericOr(target, "clicks") + ")"
		e.Kind = "aggregation"
		e.Columns = []string{numericOr(target, "clicks")}
	default:
		sel = "COUNT(*)"
		e.Kind = "aggregation"
		if len(atoms) == 0 {
			e.Columns = nil
		}
	}
	var sb strings.Builder
	sb.WriteString("SELECT " + sel + " FROM " + table)
	if len(atoms) > 0 {
		sb.WriteString(" WHERE ")
		for i, a := range atoms {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(fmt.Sprintf("%s %s %s", a.col, a.op, a.val))
			e.Predicates = append(e.Predicates, a.String())
			e.Columns = append(e.Columns, a.col)
		}
	}
	e.SQL = sb.String()
	e.Columns = dedupStrings(e.Columns)
	return e
}

func numericOr(col, fallback string) string {
	switch col {
	case "clicks", "pos", "dwell", "score", "uid", "ts":
		return col
	default:
		return fallback
	}
}

func dedupStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
