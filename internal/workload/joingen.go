package workload

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/colstore"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// JoinSpec shapes a fact/dimension table pair built to exercise the
// repartition shuffle and the differential harness: the dimension carries
// duplicate join keys (so joins fan out), the fact draws keys from twice
// the dimension keyspace (so outer joins have unmatched rows on both
// sides), and a fraction of fact keys are NULL.
type JoinSpec struct {
	FactName string
	DimName  string

	FactPartitions  int
	FactRowsPerPart int
	DimPartitions   int
	DimRowsPerPart  int

	// Keyspace is the number of distinct dimension join-key values; with
	// more dimension rows than keys, keys repeat and joins multiply rows.
	Keyspace int64
	// NullFraction of fact join keys are NULL (never match anything).
	NullFraction float64

	// PathPrefix places the partitions; fact and dim get subdirectories.
	PathPrefix string
	Seed       int64
}

// DefaultJoinSpec is sized for tests: small enough that a nested-loop
// oracle is instant, large enough that every partition, reducer and join
// branch sees rows.
func DefaultJoinSpec() JoinSpec {
	return JoinSpec{
		FactName:        "orders",
		DimName:         "users",
		FactPartitions:  4,
		FactRowsPerPart: 64,
		DimPartitions:   2,
		DimRowsPerPart:  40,
		Keyspace:        30,
		NullFraction:    0.05,
		PathPrefix:      "/hdfs/join",
		Seed:            424242,
	}
}

// FactJoinSchema is the generated fact table's schema: a row id, a
// nullable join key, a numeric measure, a low-cardinality string and a
// small grouping column.
func FactJoinSchema() *types.Schema {
	return types.MustSchema(
		types.Field{Name: "id", Type: types.Int64},
		types.Field{Name: "k", Type: types.Int64},
		types.Field{Name: "v", Type: types.Int64},
		types.Field{Name: "s", Type: types.String},
		types.Field{Name: "grp", Type: types.Int64},
	)
}

// DimJoinSchema is the generated dimension's schema: a duplicated join
// key, a unique name, a numeric weight and a small category.
func DimJoinSchema() *types.Schema {
	return types.MustSchema(
		types.Field{Name: "k", Type: types.Int64},
		types.Field{Name: "name", Type: types.String},
		types.Field{Name: "w", Type: types.Int64},
		types.Field{Name: "cat", Type: types.Int64},
	)
}

var factStrings = []string{"red", "green", "blue", "cyan", "plum"}

// GenerateJoin writes both tables through the router and returns their
// catalog entries plus the raw rows, so differential tests can hand the
// exact same data to an in-memory oracle.
func GenerateJoin(ctx context.Context, router *storage.Router, spec JoinSpec) (factMeta, dimMeta *plan.TableMeta, factRows, dimRows []types.Row, err error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	factSchema, dimSchema := FactJoinSchema(), DimJoinSchema()

	genFact := func(id int64) types.Row {
		k := types.NullValue()
		if rng.Float64() >= spec.NullFraction {
			k = types.NewInt(rng.Int63n(2 * spec.Keyspace))
		}
		return types.Row{
			types.NewInt(id),
			k,
			types.NewInt(rng.Int63n(1000)),
			types.NewString(factStrings[rng.Intn(len(factStrings))]),
			types.NewInt(id % 7),
		}
	}
	genDim := func(i int64) types.Row {
		k := i % spec.Keyspace
		return types.Row{
			types.NewInt(k),
			types.NewString(fmt.Sprintf("d-%04d", i)),
			types.NewInt(rng.Int63n(500)),
			types.NewInt(k % 5),
		}
	}

	write := func(name, prefix string, schema *types.Schema, parts, rowsPer int, gen func(int64) types.Row) (*plan.TableMeta, []types.Row, error) {
		meta := &plan.TableMeta{Name: name, Schema: schema}
		var all []types.Row
		for p := 0; p < parts; p++ {
			w := colstore.NewWriter(schema, 256)
			for r := 0; r < rowsPer; r++ {
				row := gen(int64(p*rowsPer + r))
				all = append(all, row)
				if err := w.Append(row); err != nil {
					return nil, nil, err
				}
			}
			data, err := w.Finish()
			if err != nil {
				return nil, nil, err
			}
			path := fmt.Sprintf("%s/p%04d", prefix, p)
			if err := router.WriteFile(ctx, path, data); err != nil {
				return nil, nil, err
			}
			meta.Partitions = append(meta.Partitions, plan.PartitionMeta{
				Path:  path,
				Rows:  int64(rowsPer),
				Bytes: int64(len(data)),
			})
		}
		return meta, all, nil
	}

	factMeta, factRows, err = write(spec.FactName, spec.PathPrefix+"/fact", factSchema,
		spec.FactPartitions, spec.FactRowsPerPart, genFact)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	dimMeta, dimRows, err = write(spec.DimName, spec.PathPrefix+"/dim", dimSchema,
		spec.DimPartitions, spec.DimRowsPerPart, genDim)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return factMeta, dimMeta, factRows, dimRows, nil
}

// JoinPredicate emits one random predicate over the generated pair's
// columns (fact bound as f, dimension as d). Predicates hit both sides,
// mix AND/OR, and include NULL-sensitive atoms, so three-valued logic is
// exercised end to end.
func JoinPredicate(rng *rand.Rand) string {
	atom := func() string {
		switch rng.Intn(8) {
		case 0:
			return fmt.Sprintf("f.v < %d", rng.Intn(1000))
		case 1:
			return fmt.Sprintf("f.v >= %d", rng.Intn(1000))
		case 2:
			return fmt.Sprintf("f.grp = %d", rng.Intn(7))
		case 3:
			return fmt.Sprintf("f.s = '%s'", factStrings[rng.Intn(len(factStrings))])
		case 4:
			return "f.k IS NOT NULL"
		case 5:
			return fmt.Sprintf("d.w > %d", rng.Intn(500))
		case 6:
			return fmt.Sprintf("d.cat = %d", rng.Intn(5))
		default:
			return fmt.Sprintf("f.k < %d", rng.Intn(60))
		}
	}
	switch rng.Intn(3) {
	case 0:
		return atom()
	case 1:
		return "(" + atom() + " AND " + atom() + ")"
	default:
		return "(" + atom() + " OR " + atom() + ")"
	}
}

// joinClause emits the FROM/JOIN section: comma join, JOIN ON, or an
// outer join, with the fact table always first so the engine's probe side
// matches the SQL left side.
func joinClause(rng *rand.Rand, fact, dim string) (from string, comma bool) {
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("FROM %s f, %s d", fact, dim), true
	case 1:
		return fmt.Sprintf("FROM %s f JOIN %s d ON f.k = d.k", fact, dim), false
	case 2:
		return fmt.Sprintf("FROM %s f LEFT OUTER JOIN %s d ON f.k = d.k", fact, dim), false
	default:
		return fmt.Sprintf("FROM %s f RIGHT OUTER JOIN %s d ON f.k = d.k", fact, dim), false
	}
}

var joinScalarCols = []string{"f.id", "f.k", "f.v", "f.s", "f.grp", "d.k", "d.name", "d.w", "d.cat"}
var joinGroupCols = []string{"f.grp", "f.s", "d.cat", "d.name"}
var joinAggs = []string{"COUNT(*)", "SUM(f.v)", "AVG(f.v)", "MIN(f.v)", "MAX(f.v)", "SUM(d.w)", "MIN(d.w)", "MAX(d.w)", "COUNT(d.k)", "MIN(d.name)"}

// JoinQuery emits one random join/aggregate query over the generated
// pair. Every query is deterministic as a bag: ORDER BY always covers all
// selected columns, and LIMIT appears only under such an ORDER BY (tied
// rows are then identical, so any prefix is the same bag).
func JoinQuery(rng *rand.Rand, fact, dim string) string {
	from, comma := joinClause(rng, fact, dim)

	var where []string
	if comma {
		where = append(where, "f.k = d.k")
	}
	if rng.Intn(3) > 0 {
		where = append(where, JoinPredicate(rng))
	}

	var sb strings.Builder
	sb.WriteString("SELECT ")

	var aliases []string
	agg := rng.Intn(2) == 0
	if agg {
		nKeys := rng.Intn(3) // 0 = global aggregate
		keys := pickDistinct(rng, joinGroupCols, nKeys)
		aggs := pickDistinct(rng, joinAggs, 1+rng.Intn(3))
		items := make([]string, 0, len(keys)+len(aggs))
		for i, k := range keys {
			a := fmt.Sprintf("g%d", i)
			items = append(items, k+" AS "+a)
			aliases = append(aliases, a)
		}
		for i, ag := range aggs {
			a := fmt.Sprintf("a%d", i)
			items = append(items, ag+" AS "+a)
			aliases = append(aliases, a)
		}
		sb.WriteString(strings.Join(items, ", "))
		sb.WriteString(" ")
		sb.WriteString(from)
		if len(where) > 0 {
			sb.WriteString(" WHERE " + strings.Join(where, " AND "))
		}
		if len(keys) > 0 {
			sb.WriteString(" GROUP BY " + strings.Join(keys, ", "))
		}
		if len(keys) > 0 && rng.Intn(4) == 0 {
			sb.WriteString(fmt.Sprintf(" HAVING COUNT(*) > %d", rng.Intn(3)))
		}
	} else {
		cols := pickDistinct(rng, joinScalarCols, 2+rng.Intn(3))
		items := make([]string, len(cols))
		for i, c := range cols {
			a := fmt.Sprintf("c%d", i)
			items[i] = c + " AS " + a
			aliases = append(aliases, a)
		}
		sb.WriteString(strings.Join(items, ", "))
		sb.WriteString(" ")
		sb.WriteString(from)
		if len(where) > 0 {
			sb.WriteString(" WHERE " + strings.Join(where, " AND "))
		}
	}

	if rng.Intn(10) < 7 {
		order := make([]string, len(aliases))
		for i, a := range rng.Perm(len(aliases)) {
			order[i] = aliases[a]
			if rng.Intn(2) == 0 {
				order[i] += " DESC"
			}
		}
		sb.WriteString(" ORDER BY " + strings.Join(order, ", "))
		if rng.Intn(2) == 0 {
			sb.WriteString(fmt.Sprintf(" LIMIT %d", 1+rng.Intn(40)))
		}
	}
	return sb.String()
}

// JoinQueries emits n deterministic queries for the differential suite.
func JoinQueries(fact, dim string, seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = JoinQuery(rng, fact, dim)
	}
	return out
}

// pickDistinct selects n distinct entries from pool, preserving a random
// order.
func pickDistinct(rng *rand.Rand, pool []string, n int) []string {
	if n > len(pool) {
		n = len(pool)
	}
	perm := rng.Perm(len(pool))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}
