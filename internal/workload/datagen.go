// Package workload generates the synthetic equivalents of the paper's
// evaluation inputs: the T1/T2/T3 datasets (Table I) scaled down per
// DESIGN.md §2, and a two-month query log reproducing the access patterns
// of §IV-A — trial-and-error user sessions, Zipf column popularity, and
// predicate reuse inside time windows. The analyzers regenerate the series
// behind Fig. 4 (data locality), Fig. 5 (query similarity) and Fig. 8
// (keyword frequency).
package workload

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/colstore"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// DatasetSpec shapes one generated table.
type DatasetSpec struct {
	Name        string
	Fields      int // total column count (paper: 200 for T1/T2, 57 for T3)
	Partitions  int
	RowsPerPart int
	// PathPrefix places partitions ("/hdfs/t1", "/ffs/t3", ...).
	PathPrefix string
	// Seed makes generation deterministic.
	Seed int64
}

// T1Spec, T2Spec and T3Spec mirror Table I's schema shapes at a reduced
// scale (records scaled ~1:10^5; field counts preserved). T3's attributes
// are a subset of T1's/T2's, as in the paper.
func T1Spec() DatasetSpec {
	return DatasetSpec{Name: "T1", Fields: 200, Partitions: 8, RowsPerPart: 4096, PathPrefix: "/hdfs/t1", Seed: 101}
}

// T2Spec is the larger click-log table (stored on storage system B).
func T2Spec() DatasetSpec {
	return DatasetSpec{Name: "T2", Fields: 200, Partitions: 16, RowsPerPart: 8192, PathPrefix: "/hdfsb/t2", Seed: 202}
}

// T3Spec is the sampled webpage table (57 fields, storage system A).
func T3Spec() DatasetSpec {
	return DatasetSpec{Name: "T3", Fields: 57, Partitions: 4, RowsPerPart: 2048, PathPrefix: "/hdfs/t3", Seed: 303}
}

// CoreColumns is the head of every generated schema: the columns queries
// actually touch (the paper: "hundreds of attributes but only a small
// subset of them are actually queried").
var CoreColumns = []types.Field{
	{Name: "ts", Type: types.Int64},
	{Name: "query", Type: types.String},
	{Name: "url", Type: types.String},
	{Name: "clicks", Type: types.Int64},
	{Name: "pos", Type: types.Int64},
	{Name: "dwell", Type: types.Float64},
	{Name: "uid", Type: types.Int64},
	{Name: "spam", Type: types.Bool},
	{Name: "score", Type: types.Float64},
	{Name: "region", Type: types.String},
}

// BuildSchema returns the spec's schema: core columns plus filler
// attributes up to the field count.
func BuildSchema(spec DatasetSpec) *types.Schema {
	fields := append([]types.Field(nil), CoreColumns...)
	for len(fields) < spec.Fields {
		fields = append(fields, types.Field{
			Name: fmt.Sprintf("attr%03d", len(fields)),
			Type: types.Int64,
		})
	}
	return types.MustSchema(fields[:spec.Fields]...)
}

// queryTerms and regions feed the string columns.
var queryTerms = []string{
	"weather", "music", "maps", "news", "stock", "video", "travel",
	"recipe", "spam offer", "download", "encyclopedia", "translate",
}

var regions = []string{"bj", "sh", "gz", "sz", "cd", "wh"}

// Generate writes the dataset's partitions through the router and returns
// its catalog entry.
func Generate(ctx context.Context, router *storage.Router, spec DatasetSpec) (*plan.TableMeta, error) {
	schema := BuildSchema(spec)
	meta := &plan.TableMeta{Name: spec.Name, Schema: schema}
	rng := rand.New(rand.NewSource(spec.Seed))
	zipfURL := rand.NewZipf(rng, 1.2, 1, 9999)
	for p := 0; p < spec.Partitions; p++ {
		w := colstore.NewWriter(schema, 1024)
		for r := 0; r < spec.RowsPerPart; r++ {
			row := make(types.Row, schema.Len())
			ts := int64(1_480_000_000 + p*spec.RowsPerPart + r)
			term := queryTerms[rng.Intn(len(queryTerms))]
			row[0] = types.NewInt(ts)
			row[1] = types.NewString(term)
			row[2] = types.NewString(fmt.Sprintf("http://site-%d.example/%s", zipfURL.Uint64(), term))
			row[3] = types.NewInt(int64(rng.Intn(20)))
			row[4] = types.NewInt(int64(rng.Intn(10) + 1))
			row[5] = types.NewFloat(rng.Float64() * 300)
			row[6] = types.NewInt(int64(rng.Intn(100000)))
			row[7] = types.NewBool(rng.Intn(50) == 0)
			row[8] = types.NewFloat(rng.Float64())
			row[9] = types.NewString(regions[rng.Intn(len(regions))])
			for c := len(CoreColumns); c < schema.Len(); c++ {
				row[c] = types.NewInt(rng.Int63n(1000))
			}
			if err := w.Append(row); err != nil {
				return nil, err
			}
		}
		data, err := w.Finish()
		if err != nil {
			return nil, err
		}
		path := fmt.Sprintf("%s/p%04d", spec.PathPrefix, p)
		if err := router.WriteFile(ctx, path, data); err != nil {
			return nil, err
		}
		meta.Partitions = append(meta.Partitions, plan.PartitionMeta{
			Path:  path,
			Rows:  int64(spec.RowsPerPart),
			Bytes: int64(len(data)),
		})
	}
	return meta, nil
}
