package workload

import (
	"context"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/storage"
)

func smallSpec() DatasetSpec {
	return DatasetSpec{Name: "T1", Fields: 20, Partitions: 2, RowsPerPart: 128, PathPrefix: "/t1", Seed: 1}
}

func TestBuildSchemaShapes(t *testing.T) {
	for _, spec := range []DatasetSpec{T1Spec(), T2Spec(), T3Spec()} {
		s := BuildSchema(spec)
		if s.Len() != spec.Fields {
			t.Errorf("%s fields = %d, want %d", spec.Name, s.Len(), spec.Fields)
		}
	}
	// T3's attributes are a subset of T1's (paper Table I).
	t1 := BuildSchema(T1Spec())
	t3 := BuildSchema(T3Spec())
	for _, f := range t3.Fields {
		if t1.Index(f.Name) < 0 {
			t.Errorf("T3 column %q not in T1", f.Name)
		}
	}
}

func TestGenerateDeterministicAndQueryable(t *testing.T) {
	router := storage.NewRouter(storage.NewMemFS("", nil))
	ctx := context.Background()
	spec := smallSpec()
	meta, err := Generate(ctx, router, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Partitions) != 2 || meta.Rows() != 256 {
		t.Fatalf("meta = %+v", meta)
	}

	// Same seed, same bytes.
	router2 := storage.NewRouter(storage.NewMemFS("", nil))
	if _, err := Generate(ctx, router2, spec); err != nil {
		t.Fatal(err)
	}
	d1, _ := router.ReadFile(ctx, "/t1/p0000")
	d2, _ := router2.ReadFile(ctx, "/t1/p0000")
	if string(d1) != string(d2) {
		t.Error("generation is not deterministic")
	}

	// The generated data is queryable end to end.
	cat := plan.MapCatalog{"T1": meta}
	stmt, err := sqlparser.Parse("SELECT COUNT(*) FROM T1 WHERE clicks >= 0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Plan(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	reader := exec.NewStoreReader(router)
	var merged *exec.TaskResult
	for _, task := range p.Tasks() {
		tr, err := exec.RunTask(ctx, task, reader, nil)
		if err != nil {
			t.Fatal(err)
		}
		merged = exec.MergeResults(p, merged, tr)
	}
	res, err := exec.Finalize(p, merged)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 256 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func testLogConfig() LogConfig {
	cfg := DefaultLogConfig()
	cfg.Duration = 3 * 24 * time.Hour
	cfg.QueriesPerDay = 800
	return cfg
}

func TestGenerateLogShape(t *testing.T) {
	cfg := testLogConfig()
	log := GenerateLog(cfg)
	want := int(float64(cfg.QueriesPerDay) * cfg.Duration.Hours() / 24)
	if len(log) != want {
		t.Fatalf("entries = %d, want %d", len(log), want)
	}
	// Timestamps are ordered and inside the horizon.
	for i := 1; i < len(log); i++ {
		if log[i].Time.Before(log[i-1].Time) {
			t.Fatal("log not time-ordered")
		}
	}
	if log[len(log)-1].Time.After(cfg.Start.Add(cfg.Duration)) {
		t.Error("entries past the horizon")
	}
	// Deterministic.
	log2 := GenerateLog(cfg)
	if log2[100].SQL != log[100].SQL {
		t.Error("log generation is not deterministic")
	}
}

func TestGeneratedSQLParses(t *testing.T) {
	log := GenerateLog(testLogConfig())
	for i, e := range log {
		if i%37 != 0 { // sample
			continue
		}
		if _, err := sqlparser.Parse(e.SQL); err != nil {
			t.Fatalf("entry %d %q: %v", i, e.SQL, err)
		}
	}
}

func TestGeneratedPredicatesMatchPlannerAtoms(t *testing.T) {
	// The log's canonical predicate strings must agree with the planner's
	// atom keys, or the similarity analysis would diverge from what
	// SmartIndex actually sees.
	log := GenerateLog(testLogConfig())
	cat := plan.MapCatalog{"T1": {Name: "T1", Schema: BuildSchema(T1Spec())}}
	checked := 0
	for _, e := range log {
		if len(e.Predicates) == 0 || checked > 200 {
			continue
		}
		stmt, err := sqlparser.Parse(e.SQL)
		if err != nil {
			t.Fatalf("%q: %v", e.SQL, err)
		}
		a, err := plan.Analyze(stmt, cat)
		if err != nil {
			t.Fatalf("%q: %v", e.SQL, err)
		}
		cnf := plan.ToCNF(a.Where)
		keys := make(map[string]bool)
		for _, cl := range cnf.Clauses {
			for _, atom := range cl.Atoms {
				keys[atom.Key()] = true
			}
		}
		for _, p := range e.Predicates {
			if !keys[p] {
				t.Fatalf("%q: predicate %q not among planner atoms %v", e.SQL, p, keys)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no predicated queries checked")
	}
}

func TestDataLocalityGrowsWithSpan(t *testing.T) {
	log := GenerateLog(testLogConfig())
	pts := AnalyzeDataLocality(log, DefaultSpans)
	if len(pts) != len(DefaultSpans) {
		t.Fatalf("points = %d", len(pts))
	}
	// Fig. 4's shape: repeated-column count grows with the span.
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value {
			t.Errorf("locality not monotone: %v", pts)
			break
		}
	}
	if pts[0].Value <= 0 {
		t.Error("short spans should still show repeated columns")
	}
}

func TestQuerySimilarityHighInWindows(t *testing.T) {
	log := GenerateLog(testLogConfig())
	pts := AnalyzeQuerySimilarity(log, DefaultSpans)
	// Fig. 5's shape: a large share of queries reuse a predicate, growing
	// with the span.
	if pts[0].Value < 0.3 {
		t.Errorf("30m similarity = %v, want >= 0.3", pts[0].Value)
	}
	last := pts[len(pts)-1].Value
	if last < pts[0].Value {
		t.Errorf("similarity should grow with span: %v", pts)
	}
	if last > 1 {
		t.Errorf("ratio out of range: %v", last)
	}
}

func TestKeywordHistogram(t *testing.T) {
	log := GenerateLog(testLogConfig())
	hist := AnalyzeKeywords(log)
	if len(hist) == 0 || hist[0].Keyword != "aggregation" {
		t.Errorf("histogram = %+v", hist)
	}
	if r := ScanAggRatio(log); r < 0.99 {
		t.Errorf("scan+agg ratio = %v, want >= 0.99 (paper Fig. 8)", r)
	}
}

func TestAnalyzersEmptyLog(t *testing.T) {
	if pts := AnalyzeDataLocality(nil, DefaultSpans); pts[0].Value != 0 {
		t.Error("empty log locality should be 0")
	}
	if pts := AnalyzeQuerySimilarity(nil, DefaultSpans); pts[0].Value != 0 {
		t.Error("empty log similarity should be 0")
	}
	if ScanAggRatio(nil) != 0 {
		t.Error("empty ratio should be 0")
	}
}

func TestForEachWindowCoversAll(t *testing.T) {
	log := GenerateLog(testLogConfig())
	seen := 0
	forEachWindow(log, time.Hour, func(entries []LogEntry) { seen += len(entries) })
	if seen != len(log) {
		t.Errorf("windows covered %d of %d entries", seen, len(log))
	}
}
