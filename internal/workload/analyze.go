package workload

import (
	"sort"
	"time"
)

// The analyzers reproduce the paper's §IV-A study of a two-month query log:
// Fig. 4 counts columns accessed repeatedly inside fixed time spans, Fig. 5
// measures the fraction of queries sharing at least one exact predicate
// with another query in the span, and Fig. 8 histograms statement keywords.

// SpanPoint is one (span, value) sample of an analysis series.
type SpanPoint struct {
	Span  time.Duration
	Value float64
}

// DefaultSpans are the x-axis of Figs. 4 and 5.
var DefaultSpans = []time.Duration{
	30 * time.Minute, time.Hour, 2 * time.Hour, 4 * time.Hour, 8 * time.Hour,
}

// AnalyzeDataLocality reproduces Fig. 4: for each span it averages, over
// all windows of that span, the number of distinct columns accessed by two
// or more queries in the window.
func AnalyzeDataLocality(log []LogEntry, spans []time.Duration) []SpanPoint {
	out := make([]SpanPoint, 0, len(spans))
	for _, span := range spans {
		var windows, repeated float64
		forEachWindow(log, span, func(entries []LogEntry) {
			counts := make(map[string]int)
			for _, e := range entries {
				for _, c := range e.Columns {
					counts[c]++
				}
			}
			n := 0
			for _, c := range counts {
				if c >= 2 {
					n++
				}
			}
			windows++
			repeated += float64(n)
		})
		v := 0.0
		if windows > 0 {
			v = repeated / windows
		}
		out = append(out, SpanPoint{Span: span, Value: v})
	}
	return out
}

// AnalyzeQuerySimilarity reproduces Fig. 5: for each span, the fraction of
// queries that share at least one exact predicate atom with a different
// query in the same window.
func AnalyzeQuerySimilarity(log []LogEntry, spans []time.Duration) []SpanPoint {
	out := make([]SpanPoint, 0, len(spans))
	for _, span := range spans {
		var total, similar float64
		forEachWindow(log, span, func(entries []LogEntry) {
			// count of queries using each atom in the window
			users := make(map[string]int)
			for _, e := range entries {
				seen := make(map[string]bool, len(e.Predicates))
				for _, p := range e.Predicates {
					if !seen[p] {
						seen[p] = true
						users[p]++
					}
				}
			}
			for _, e := range entries {
				total++
				for _, p := range e.Predicates {
					if users[p] >= 2 {
						similar++
						break
					}
				}
			}
		})
		v := 0.0
		if total > 0 {
			v = similar / total
		}
		out = append(out, SpanPoint{Span: span, Value: v})
	}
	return out
}

// forEachWindow slices the log into consecutive fixed-span windows.
func forEachWindow(log []LogEntry, span time.Duration, fn func([]LogEntry)) {
	if len(log) == 0 {
		return
	}
	start := log[0].Time
	lo := 0
	for lo < len(log) {
		hi := lo
		end := start.Add(span)
		for hi < len(log) && log[hi].Time.Before(end) {
			hi++
		}
		if hi > lo {
			fn(log[lo:hi])
		}
		lo = hi
		start = end
	}
}

// KeywordCount is one bar of the Fig. 8 histogram.
type KeywordCount struct {
	Keyword string
	Count   int
	Ratio   float64
}

// AnalyzeKeywords reproduces Fig. 8: the frequency of statement kinds in
// the log. The paper observes scan and aggregation queries make up more
// than 99% of the workload.
func AnalyzeKeywords(log []LogEntry) []KeywordCount {
	counts := make(map[string]int)
	for _, e := range log {
		counts[e.Kind]++
	}
	out := make([]KeywordCount, 0, len(counts))
	for k, c := range counts {
		out = append(out, KeywordCount{Keyword: k, Count: c, Ratio: float64(c) / float64(len(log))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// ScanAggRatio returns the combined share of scan and aggregation queries
// (the paper's ">99%" headline).
func ScanAggRatio(log []LogEntry) float64 {
	if len(log) == 0 {
		return 0
	}
	n := 0
	for _, e := range log {
		if e.Kind == "scan" || e.Kind == "aggregation" {
			n++
		}
	}
	return float64(n) / float64(len(log))
}
