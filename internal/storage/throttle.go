package storage

import (
	"context"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Agreement is the resource-consumption agreement between Feisu and a
// storage system (paper §V-A): "each storage system must synchronize its
// agreement to Feisu such that Feisu doesn't over-schedule tasks to the
// storage system". It caps the number of Feisu operations in flight
// against the store; business-critical traffic is assumed to own the rest.
type Agreement struct {
	// MaxConcurrentReads caps in-flight Feisu reads; 0 means unlimited.
	MaxConcurrentReads int
}

// Throttled wraps a Store, enforcing its Agreement and counting rejected
// or waited operations.
type Throttled struct {
	Store
	sem      chan struct{}
	Waits    metrics.Counter
	Rejected metrics.Counter
}

// NewThrottled wraps s with the agreement.
func NewThrottled(s Store, a Agreement) *Throttled {
	t := &Throttled{Store: s}
	if a.MaxConcurrentReads > 0 {
		t.sem = make(chan struct{}, a.MaxConcurrentReads)
	}
	return t
}

// acquire blocks until a slot is free or the context is done.
func (t *Throttled) acquire(ctx context.Context) error {
	if t.sem == nil {
		return nil
	}
	select {
	case t.sem <- struct{}{}:
		return nil
	default:
	}
	t.Waits.Inc()
	select {
	case t.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		t.Rejected.Inc()
		return fmt.Errorf("storage: agreement for %q: %w", t.Scheme(), ctx.Err())
	}
}

func (t *Throttled) release() {
	if t.sem != nil {
		<-t.sem
	}
}

// ReadFile enforces the agreement around the wrapped read.
func (t *Throttled) ReadFile(ctx context.Context, path string) ([]byte, error) {
	if err := t.acquire(ctx); err != nil {
		return nil, err
	}
	defer t.release()
	return t.Store.ReadFile(ctx, path)
}

// WriteFile enforces the agreement around the wrapped write.
func (t *Throttled) WriteFile(ctx context.Context, path string, data []byte) error {
	if err := t.acquire(ctx); err != nil {
		return err
	}
	defer t.release()
	return t.Store.WriteFile(ctx, path, data)
}

// Device passes through to the wrapped store.
func (t *Throttled) Device() sim.DeviceClass { return t.Store.Device() }
