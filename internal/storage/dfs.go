package storage

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// DFS simulates a replicated distributed filesystem: files are split into
// fixed-size blocks, each block is placed on several datanodes with
// rack-aware placement, and reads fall over to surviving replicas when
// nodes go down. Two configurations ship:
//
//   - NewHDFS: the paper's HDFS store (3 replicas, HDD device class);
//   - NewFatman: the paper's Fatman cold archive [Qin et al., VLDB'14] —
//     volunteer machines, throttled bandwidth, modeled by the Cold device
//     class and 2 replicas.
type DFS struct {
	scheme    string
	device    sim.DeviceClass
	model     *sim.CostModel
	blockSize int64
	replicas  int

	mu       sync.RWMutex
	nodes    []string
	racks    map[string]string // node -> rack
	down     map[string]bool
	files    map[string]*dfsFile
	placeCur int
}

type dfsFile struct {
	size   int64
	blocks []dfsBlock
}

type dfsBlock struct {
	data     []byte
	replicas []string
}

// NewHDFS returns an HDFS-like store with 3-way replication.
func NewHDFS(scheme string, model *sim.CostModel) *DFS {
	return newDFS(scheme, sim.DeviceHDD, model, 64<<20, 3)
}

// NewFatman returns a Fatman-like cold archive with 2-way replication.
func NewFatman(scheme string, model *sim.CostModel) *DFS {
	return newDFS(scheme, sim.DeviceCold, model, 64<<20, 2)
}

func newDFS(scheme string, device sim.DeviceClass, model *sim.CostModel, blockSize int64, replicas int) *DFS {
	return &DFS{
		scheme:    scheme,
		device:    device,
		model:     model,
		blockSize: blockSize,
		replicas:  replicas,
		racks:     make(map[string]string),
		down:      make(map[string]bool),
		files:     make(map[string]*dfsFile),
	}
}

// SetBlockSize overrides the block size (tests use small blocks).
func (d *DFS) SetBlockSize(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n > 0 {
		d.blockSize = n
	}
}

// AddNode registers a datanode in the given rack.
func (d *DFS) AddNode(nodeID, rack string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nodes = append(d.nodes, nodeID)
	d.racks[nodeID] = rack
}

// SetNodeDown marks a datanode offline (true) or online (false); reads fall
// over to other replicas.
func (d *DFS) SetNodeDown(nodeID string, downNow bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.down[nodeID] = downNow
}

// Scheme implements Store.
func (d *DFS) Scheme() string { return d.scheme }

// Device implements Store.
func (d *DFS) Device() sim.DeviceClass { return d.device }

// placeReplicas picks replica nodes for one block: round-robin primary,
// then nodes on other racks first (rack-aware placement), skipping downed
// nodes. Caller holds d.mu.
func (d *DFS) placeReplicas() ([]string, error) {
	up := make([]string, 0, len(d.nodes))
	for _, n := range d.nodes {
		if !d.down[n] {
			up = append(up, n)
		}
	}
	if len(up) == 0 {
		return nil, fmt.Errorf("storage: dfs %q has no live datanodes", d.scheme)
	}
	primary := up[d.placeCur%len(up)]
	d.placeCur++
	chosen := []string{primary}
	usedRacks := map[string]bool{d.racks[primary]: true}
	used := map[string]bool{primary: true}
	// Prefer distinct racks, then any distinct node.
	for _, preferNewRack := range []bool{true, false} {
		for i := 0; len(chosen) < d.replicas && i < len(up); i++ {
			n := up[(d.placeCur+i)%len(up)]
			if used[n] {
				continue
			}
			if preferNewRack && usedRacks[d.racks[n]] {
				continue
			}
			chosen = append(chosen, n)
			used[n] = true
			usedRacks[d.racks[n]] = true
		}
	}
	return chosen, nil
}

// WriteFile implements Store: the file is chunked into blocks, each placed
// on replica datanodes.
func (d *DFS) WriteFile(ctx context.Context, path string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := &dfsFile{size: int64(len(data))}
	for off := int64(0); off < int64(len(data)) || (off == 0 && len(data) == 0); off += d.blockSize {
		end := off + d.blockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		reps, err := d.placeReplicas()
		if err != nil {
			return err
		}
		blk := make([]byte, end-off)
		copy(blk, data[off:end])
		f.blocks = append(f.blocks, dfsBlock{data: blk, replicas: reps})
		if len(data) == 0 {
			break
		}
	}
	d.files[path] = f
	return nil
}

// ReadFile implements Store: each block is read from its first live
// replica; a block with no live replica fails the read with ErrUnavailable.
func (d *DFS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	d.mu.RLock()
	f, ok := d.files[path]
	if !ok {
		d.mu.RUnlock()
		return nil, ErrNotFound
	}
	out := make([]byte, 0, f.size)
	for i, blk := range f.blocks {
		live := ""
		for _, r := range blk.replicas {
			if !d.down[r] {
				live = r
				break
			}
		}
		if live == "" && len(blk.replicas) > 0 {
			d.mu.RUnlock()
			return nil, fmt.Errorf("%w: %s block %d", ErrUnavailable, path, i)
		}
		out = append(out, blk.data...)
	}
	d.mu.RUnlock()
	charge(ctx, d.model, d.device, int64(len(out)))
	return out, nil
}

// Stat implements Store.
func (d *DFS) Stat(ctx context.Context, path string) (FileInfo, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[path]
	if !ok {
		return FileInfo{}, ErrNotFound
	}
	return FileInfo{Path: path, Size: f.size}, nil
}

// List implements Store.
func (d *DFS) List(ctx context.Context, prefix string) ([]string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []string
	for p := range d.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Locations implements Store: the union of live replica holders across the
// file's blocks, sorted, so the scheduler can prefer data-local leaves.
func (d *DFS) Locations(path string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[path]
	if !ok {
		return nil
	}
	set := make(map[string]bool)
	for _, blk := range f.blocks {
		for _, r := range blk.replicas {
			if !d.down[r] {
				set[r] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ReadRange implements RangeReader: only the blocks overlapping the range
// are touched, charging just the requested bytes.
func (d *DFS) ReadRange(ctx context.Context, path string, off, length int64) ([]byte, error) {
	d.mu.RLock()
	f, ok := d.files[path]
	if !ok {
		d.mu.RUnlock()
		return nil, ErrNotFound
	}
	if off < 0 || length < 0 || off+length > f.size {
		d.mu.RUnlock()
		return nil, fmt.Errorf("storage: range [%d,%d) outside %s of %d bytes", off, off+length, path, f.size)
	}
	out := make([]byte, 0, length)
	pos := int64(0)
	for i, blk := range f.blocks {
		blkLen := int64(len(blk.data))
		start, end := pos, pos+blkLen
		pos = end
		if end <= off || start >= off+length {
			continue
		}
		live := len(blk.replicas) == 0
		for _, r := range blk.replicas {
			if !d.down[r] {
				live = true
				break
			}
		}
		if !live {
			d.mu.RUnlock()
			return nil, fmt.Errorf("%w: %s block %d", ErrUnavailable, path, i)
		}
		lo, hi := int64(0), blkLen
		if off > start {
			lo = off - start
		}
		if off+length < end {
			hi = off + length - start
		}
		out = append(out, blk.data[lo:hi]...)
	}
	d.mu.RUnlock()
	charge(ctx, d.model, d.device, length)
	return out, nil
}
