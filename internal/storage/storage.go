// Package storage implements Feisu's common storage layer (paper §III-C):
// a unified data view over heterogeneous storage systems. Every file path
// carries a prefix flag that activates a storage plugin — "/hdfs/..." routes
// to the HDFS-like distributed filesystem, "/ffs/..." to the Fatman-like
// cold archive, and unrecognized prefixes fall through to the local
// filesystem, exactly as the paper describes.
//
// The real production systems (HDFS, Fatman) are not available here, so the
// package ships faithful simulations: hdfssim replicates files across
// simulated datanodes with rack-aware placement, and fatmansim models the
// throttled, high-latency volunteer-resource archive of the Fatman paper.
// All plugins charge simulated I/O costs to the sim.Bill carried by the
// context, which is how the benchmark harness reconstructs cluster-scale
// response times.
package storage

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// ErrNotFound is returned when a path does not exist in a store.
var ErrNotFound = errors.New("storage: file not found")

// ErrUnavailable is returned when every replica of a file is offline.
var ErrUnavailable = errors.New("storage: no replica available")

// FileInfo describes one stored file.
type FileInfo struct {
	Path string
	Size int64
}

// Store is one storage domain (paper: "each storage system works in an
// independent domain").
type Store interface {
	// Scheme is the path prefix flag without slashes, e.g. "hdfs". The
	// local store's scheme is "".
	Scheme() string
	// ReadFile returns the file contents, charging I/O to the context bill.
	ReadFile(ctx context.Context, path string) ([]byte, error)
	// WriteFile stores the file contents.
	WriteFile(ctx context.Context, path string, data []byte) error
	// Stat returns file metadata.
	Stat(ctx context.Context, path string) (FileInfo, error)
	// List returns the paths under prefix, sorted.
	List(ctx context.Context, prefix string) ([]string, error)
	// Locations returns the IDs of cluster nodes that hold the file's
	// data locally (for locality-aware scheduling); empty means
	// location-free (e.g. memfs).
	Locations(path string) []string
	// Device is the device class charged for reads from this store.
	Device() sim.DeviceClass
}

type billKey struct{}

// WithBill attaches a cost bill to the context; storage plugins charge
// simulated I/O to it.
func WithBill(ctx context.Context, b *sim.Bill) context.Context {
	return context.WithValue(ctx, billKey{}, b)
}

// BillFrom extracts the bill from the context, or nil.
func BillFrom(ctx context.Context) *sim.Bill {
	b, _ := ctx.Value(billKey{}).(*sim.Bill)
	return b
}

func charge(ctx context.Context, m *sim.CostModel, d sim.DeviceClass, n int64) {
	if b := BillFrom(ctx); b != nil && m != nil {
		b.ChargeRead(m, d, n)
	}
}

// Router is the common storage layer: it maps prefixed paths to plugins.
type Router struct {
	mu     sync.RWMutex
	stores map[string]Store
	local  Store
}

// NewRouter returns a router with the given default (local) store.
func NewRouter(local Store) *Router {
	return &Router{stores: make(map[string]Store), local: local}
}

// Register adds a plugin under its scheme. Registering scheme "" replaces
// the local store.
func (r *Router) Register(s Store) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.Scheme() == "" {
		r.local = s
		return
	}
	r.stores[s.Scheme()] = s
}

// Resolve splits a full path into its store and the in-store path. Paths
// look like "/hdfs/path/to/file"; if the first segment is not a registered
// scheme, the local store gets the whole path (paper: "if a prefix string
// can not be recognized, local filesystem is activated by default").
func (r *Router) Resolve(path string) (Store, string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	trimmed := strings.TrimPrefix(path, "/")
	if i := strings.IndexByte(trimmed, '/'); i > 0 {
		if s, ok := r.stores[trimmed[:i]]; ok {
			return s, trimmed[i:]
		}
	}
	return r.local, path
}

// Stores returns all registered stores including the local one.
func (r *Router) Stores() []Store {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Store, 0, len(r.stores)+1)
	if r.local != nil {
		out = append(out, r.local)
	}
	schemes := make([]string, 0, len(r.stores))
	for s := range r.stores {
		schemes = append(schemes, s)
	}
	sort.Strings(schemes)
	for _, s := range schemes {
		out = append(out, r.stores[s])
	}
	return out
}

// ReadFile routes and reads.
func (r *Router) ReadFile(ctx context.Context, path string) ([]byte, error) {
	s, p := r.Resolve(path)
	if s == nil {
		return nil, fmt.Errorf("storage: no store for %q", path)
	}
	return s.ReadFile(ctx, p)
}

// WriteFile routes and writes.
func (r *Router) WriteFile(ctx context.Context, path string, data []byte) error {
	s, p := r.Resolve(path)
	if s == nil {
		return fmt.Errorf("storage: no store for %q", path)
	}
	return s.WriteFile(ctx, p, data)
}

// Stat routes and stats.
func (r *Router) Stat(ctx context.Context, path string) (FileInfo, error) {
	s, p := r.Resolve(path)
	if s == nil {
		return FileInfo{}, fmt.Errorf("storage: no store for %q", path)
	}
	fi, err := s.Stat(ctx, p)
	if err != nil {
		return fi, err
	}
	fi.Path = path
	return fi, nil
}

// Locations routes and returns data-holding node IDs.
func (r *Router) Locations(path string) []string {
	s, p := r.Resolve(path)
	if s == nil {
		return nil
	}
	return s.Locations(p)
}

// RangeReader is implemented by stores that can serve byte ranges without
// reading the whole file — the capability that makes column-granular reads
// (and thus SmartIndex's I/O savings) real.
type RangeReader interface {
	ReadRange(ctx context.Context, path string, off, length int64) ([]byte, error)
}

// ReadRange routes and reads [off, off+length). Stores without range
// support fall back to a full read (and are billed for it).
func (r *Router) ReadRange(ctx context.Context, path string, off, length int64) ([]byte, error) {
	s, p := r.Resolve(path)
	if s == nil {
		return nil, fmt.Errorf("storage: no store for %q", path)
	}
	if rr, ok := s.(RangeReader); ok {
		return rr.ReadRange(ctx, p, off, length)
	}
	data, err := s.ReadFile(ctx, p)
	if err != nil {
		return nil, err
	}
	return sliceRange(data, off, length)
}

func sliceRange(data []byte, off, length int64) ([]byte, error) {
	if off < 0 || length < 0 || off+length > int64(len(data)) {
		return nil, fmt.Errorf("storage: range [%d,%d) outside file of %d bytes", off, off+length, len(data))
	}
	out := make([]byte, length)
	copy(out, data[off:off+length])
	return out, nil
}

// Device returns the device class of the store holding path.
func (r *Router) Device(path string) sim.DeviceClass {
	s, _ := r.Resolve(path)
	if s == nil {
		return sim.DeviceHDD
	}
	return s.Device()
}
