package storage

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/sim"
)

// LocalFS is the default store: real files under a root directory, charged
// as HDD reads. It models the local filesystems of the online service
// machines that hold log data in the paper.
type LocalFS struct {
	root   string
	model  *sim.CostModel
	nodeID string
}

// NewLocalFS returns a store rooted at dir. A nil model disables cost
// charging.
func NewLocalFS(dir string, model *sim.CostModel) *LocalFS {
	return &LocalFS{root: dir, model: model}
}

// SetNodeID sets the node reported by Locations.
func (l *LocalFS) SetNodeID(id string) { l.nodeID = id }

// Scheme implements Store; LocalFS is the fallback store.
func (l *LocalFS) Scheme() string { return "" }

// Device implements Store.
func (l *LocalFS) Device() sim.DeviceClass { return sim.DeviceHDD }

// resolve maps an in-store path to a real path, refusing escapes above the
// root.
func (l *LocalFS) resolve(path string) (string, error) {
	clean := filepath.Clean("/" + path)
	full := filepath.Join(l.root, clean)
	if rel, err := filepath.Rel(l.root, full); err != nil || strings.HasPrefix(rel, "..") {
		return "", errors.New("storage: path escapes root")
	}
	return full, nil
}

// ReadFile implements Store.
func (l *LocalFS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	full, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(full)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	charge(ctx, l.model, sim.DeviceHDD, int64(len(data)))
	return data, nil
}

// WriteFile implements Store.
func (l *LocalFS) WriteFile(ctx context.Context, path string, data []byte) error {
	full, err := l.resolve(path)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return err
	}
	return os.WriteFile(full, data, 0o644)
}

// Stat implements Store.
func (l *LocalFS) Stat(ctx context.Context, path string) (FileInfo, error) {
	full, err := l.resolve(path)
	if err != nil {
		return FileInfo{}, err
	}
	fi, err := os.Stat(full)
	if errors.Is(err, fs.ErrNotExist) {
		return FileInfo{}, ErrNotFound
	}
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Path: path, Size: fi.Size()}, nil
}

// List implements Store.
func (l *LocalFS) List(ctx context.Context, prefix string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(l.root, p)
		if err != nil {
			return err
		}
		full := "/" + filepath.ToSlash(rel)
		if strings.HasPrefix(full, prefix) {
			out = append(out, full)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Locations implements Store.
func (l *LocalFS) Locations(string) []string {
	if l.nodeID == "" {
		return nil
	}
	return []string{l.nodeID}
}

// ReadRange implements RangeReader via a positional read, charging only the
// bytes read.
func (l *LocalFS) ReadRange(ctx context.Context, path string, off, length int64) ([]byte, error) {
	full, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(full)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make([]byte, length)
	if _, err := io.ReadFull(io.NewSectionReader(f, off, length), out); err != nil {
		return nil, fmt.Errorf("storage: range read %s: %w", path, err)
	}
	charge(ctx, l.model, sim.DeviceHDD, length)
	return out, nil
}
