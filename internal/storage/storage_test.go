package storage

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestRouterResolvePrefixes(t *testing.T) {
	model := sim.DefaultCostModel()
	local := NewMemFS("", model)
	hdfs := NewMemFS("hdfs", model)
	ffs := NewMemFS("ffs", model)
	r := NewRouter(local)
	r.Register(hdfs)
	r.Register(ffs)

	s, p := r.Resolve("/hdfs/path/to/file")
	if s != Store(hdfs) || p != "/path/to/file" {
		t.Errorf("hdfs resolve = %v, %q", s.Scheme(), p)
	}
	s, p = r.Resolve("/ffs/x")
	if s != Store(ffs) || p != "/x" {
		t.Errorf("ffs resolve = %v, %q", s.Scheme(), p)
	}
	// Unrecognized prefix falls through to local with the whole path.
	s, p = r.Resolve("/data/log.bin")
	if s != Store(local) || p != "/data/log.bin" {
		t.Errorf("local resolve = %v, %q", s.Scheme(), p)
	}
}

func TestRouterReadWriteAcrossStores(t *testing.T) {
	model := sim.DefaultCostModel()
	r := NewRouter(NewMemFS("", model))
	r.Register(NewMemFS("hdfs", model))
	ctx := context.Background()

	if err := r.WriteFile(ctx, "/hdfs/a", []byte("hdfs-data")); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteFile(ctx, "/a", []byte("local-data")); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadFile(ctx, "/hdfs/a")
	if err != nil || string(got) != "hdfs-data" {
		t.Errorf("hdfs read = %q, %v", got, err)
	}
	got, err = r.ReadFile(ctx, "/a")
	if err != nil || string(got) != "local-data" {
		t.Errorf("local read = %q, %v", got, err)
	}
	fi, err := r.Stat(ctx, "/hdfs/a")
	if err != nil || fi.Size != 9 || fi.Path != "/hdfs/a" {
		t.Errorf("stat = %+v, %v", fi, err)
	}
}

func TestRouterStores(t *testing.T) {
	r := NewRouter(NewMemFS("", nil))
	r.Register(NewMemFS("hdfs", nil))
	r.Register(NewMemFS("ffs", nil))
	stores := r.Stores()
	if len(stores) != 3 {
		t.Fatalf("Stores = %d", len(stores))
	}
	if stores[0].Scheme() != "" || stores[1].Scheme() != "ffs" || stores[2].Scheme() != "hdfs" {
		t.Errorf("order = %q %q %q", stores[0].Scheme(), stores[1].Scheme(), stores[2].Scheme())
	}
}

func TestMemFSBilling(t *testing.T) {
	model := sim.DefaultCostModel()
	fs := NewMemFS("", model)
	ctx := context.Background()
	if err := fs.WriteFile(ctx, "/f", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	bill := sim.NewBill()
	if _, err := fs.ReadFile(WithBill(ctx, bill), "/f"); err != nil {
		t.Fatal(err)
	}
	if bill.Bytes(sim.DeviceMemory) != 1000 || bill.Ops(sim.DeviceMemory) != 1 {
		t.Errorf("bill = %d bytes %d ops", bill.Bytes(sim.DeviceMemory), bill.Ops(sim.DeviceMemory))
	}
	// Reads without a bill are fine.
	if _, err := fs.ReadFile(ctx, "/f"); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSNotFoundAndList(t *testing.T) {
	fs := NewMemFS("", nil)
	ctx := context.Background()
	if _, err := fs.ReadFile(ctx, "/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	if _, err := fs.Stat(ctx, "/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("stat err = %v", err)
	}
	_ = fs.WriteFile(ctx, "/t/a", nil)
	_ = fs.WriteFile(ctx, "/t/b", nil)
	_ = fs.WriteFile(ctx, "/u/c", nil)
	got, err := fs.List(ctx, "/t/")
	if err != nil || len(got) != 2 || got[0] != "/t/a" || got[1] != "/t/b" {
		t.Errorf("List = %v, %v", got, err)
	}
}

func TestMemFSReadIsolation(t *testing.T) {
	fs := NewMemFS("", nil)
	ctx := context.Background()
	_ = fs.WriteFile(ctx, "/f", []byte("abc"))
	got, _ := fs.ReadFile(ctx, "/f")
	got[0] = 'X'
	again, _ := fs.ReadFile(ctx, "/f")
	if string(again) != "abc" {
		t.Error("read buffer should be a copy")
	}
}

func TestLocalFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := NewLocalFS(dir, sim.DefaultCostModel())
	ctx := context.Background()
	if err := fs.WriteFile(ctx, "/sub/dir/file.bin", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	bill := sim.NewBill()
	got, err := fs.ReadFile(WithBill(ctx, bill), "/sub/dir/file.bin")
	if err != nil || string(got) != "payload" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if bill.Bytes(sim.DeviceHDD) != 7 {
		t.Errorf("bill hdd bytes = %d", bill.Bytes(sim.DeviceHDD))
	}
	fi, err := fs.Stat(ctx, "/sub/dir/file.bin")
	if err != nil || fi.Size != 7 {
		t.Errorf("stat = %+v, %v", fi, err)
	}
	list, err := fs.List(ctx, "/sub/")
	if err != nil || len(list) != 1 || list[0] != "/sub/dir/file.bin" {
		t.Errorf("list = %v, %v", list, err)
	}
	if _, err := fs.ReadFile(ctx, "/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing = %v", err)
	}
}

func TestLocalFSPathEscape(t *testing.T) {
	fs := NewLocalFS(t.TempDir(), nil)
	ctx := context.Background()
	// Cleaned paths stay under root; after Clean("/../..") = "/", joins are safe.
	if err := fs.WriteFile(ctx, "/../escape", []byte("x")); err != nil {
		t.Fatalf("cleaned path should be contained: %v", err)
	}
	got, err := fs.ReadFile(ctx, "/escape")
	if err != nil || string(got) != "x" {
		t.Errorf("escape landed outside root: %q %v", got, err)
	}
}

func TestDFSWriteReadReplicated(t *testing.T) {
	d := NewHDFS("hdfs", sim.DefaultCostModel())
	d.SetBlockSize(4)
	for i, rack := range []string{"r1", "r1", "r2", "r2"} {
		d.AddNode(nodeName(i), rack)
	}
	ctx := context.Background()
	data := []byte("0123456789ab") // 3 blocks of 4
	if err := d.WriteFile(ctx, "/t/p0", data); err != nil {
		t.Fatal(err)
	}
	bill := sim.NewBill()
	got, err := d.ReadFile(WithBill(ctx, bill), "/t/p0")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read = %q, %v", got, err)
	}
	if bill.Bytes(sim.DeviceHDD) != int64(len(data)) {
		t.Errorf("bill = %d", bill.Bytes(sim.DeviceHDD))
	}
	locs := d.Locations("/t/p0")
	if len(locs) == 0 {
		t.Fatal("no locations")
	}
}

func TestDFSRackAwarePlacement(t *testing.T) {
	d := NewHDFS("hdfs", nil)
	d.SetBlockSize(1 << 20)
	d.AddNode("n0", "r1")
	d.AddNode("n1", "r1")
	d.AddNode("n2", "r2")
	ctx := context.Background()
	if err := d.WriteFile(ctx, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	d.mu.RLock()
	reps := d.files["/f"].blocks[0].replicas
	d.mu.RUnlock()
	if len(reps) != 3 {
		t.Fatalf("replicas = %v", reps)
	}
	racks := map[string]bool{}
	for _, r := range reps {
		racks[d.racks[r]] = true
	}
	if len(racks) < 2 {
		t.Errorf("placement not rack-aware: %v", reps)
	}
}

func TestDFSFailover(t *testing.T) {
	d := NewHDFS("hdfs", nil)
	d.SetBlockSize(1 << 20)
	d.AddNode("n0", "r1")
	d.AddNode("n1", "r2")
	d.AddNode("n2", "r3")
	ctx := context.Background()
	if err := d.WriteFile(ctx, "/f", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Take down two of the three replicas: read must still succeed.
	d.SetNodeDown("n0", true)
	d.SetNodeDown("n1", true)
	got, err := d.ReadFile(ctx, "/f")
	if err != nil || string(got) != "payload" {
		t.Fatalf("failover read = %q, %v", got, err)
	}
	// All down: unavailable.
	d.SetNodeDown("n2", true)
	if _, err := d.ReadFile(ctx, "/f"); !errors.Is(err, ErrUnavailable) {
		t.Errorf("want ErrUnavailable, got %v", err)
	}
	// Back up: readable again, and Locations reflects liveness.
	d.SetNodeDown("n2", false)
	if locs := d.Locations("/f"); len(locs) != 1 || locs[0] != "n2" {
		t.Errorf("locations = %v", locs)
	}
}

func TestDFSNoNodes(t *testing.T) {
	d := NewHDFS("hdfs", nil)
	if err := d.WriteFile(context.Background(), "/f", []byte("x")); err == nil {
		t.Error("write with no datanodes should fail")
	}
}

func TestDFSEmptyFile(t *testing.T) {
	d := NewHDFS("hdfs", nil)
	d.AddNode("n0", "r1")
	ctx := context.Background()
	if err := d.WriteFile(ctx, "/empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadFile(ctx, "/empty")
	if err != nil || len(got) != 0 {
		t.Errorf("empty read = %v, %v", got, err)
	}
}

func TestDFSNotFoundAndList(t *testing.T) {
	d := NewFatman("ffs", nil)
	d.AddNode("v0", "r1")
	ctx := context.Background()
	if _, err := d.ReadFile(ctx, "/x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	if _, err := d.Stat(ctx, "/x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("stat err = %v", err)
	}
	_ = d.WriteFile(ctx, "/a/1", []byte("x"))
	_ = d.WriteFile(ctx, "/a/2", []byte("y"))
	got, err := d.List(ctx, "/a/")
	if err != nil || len(got) != 2 {
		t.Errorf("List = %v, %v", got, err)
	}
	if d.Device() != sim.DeviceCold {
		t.Error("fatman should charge cold reads")
	}
}

func TestFatmanColderThanHDFS(t *testing.T) {
	model := sim.DefaultCostModel()
	hdfs := NewHDFS("hdfs", model)
	hdfs.AddNode("n0", "r1")
	ffs := NewFatman("ffs", model)
	ffs.AddNode("v0", "r1")
	ctx := context.Background()
	data := make([]byte, 1<<20)
	_ = hdfs.WriteFile(ctx, "/f", data)
	_ = ffs.WriteFile(ctx, "/f", data)

	hb, fb := sim.NewBill(), sim.NewBill()
	if _, err := hdfs.ReadFile(WithBill(ctx, hb), "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := ffs.ReadFile(WithBill(ctx, fb), "/f"); err != nil {
		t.Fatal(err)
	}
	if fb.Time() <= hb.Time() {
		t.Errorf("cold read (%v) should cost more than hdfs read (%v)", fb.Time(), hb.Time())
	}
}

func TestThrottledAgreement(t *testing.T) {
	fs := NewMemFS("", nil)
	ctx := context.Background()
	_ = fs.WriteFile(ctx, "/f", []byte("x"))
	th := NewThrottled(fs, Agreement{MaxConcurrentReads: 1})

	// Fill the only slot, then a second read must wait and time out.
	th.sem <- struct{}{}
	tctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := th.ReadFile(tctx, "/f"); err == nil {
		t.Error("saturated agreement should time out")
	}
	if th.Waits.Value() != 1 || th.Rejected.Value() != 1 {
		t.Errorf("waits=%d rejected=%d", th.Waits.Value(), th.Rejected.Value())
	}
	<-th.sem
	if _, err := th.ReadFile(ctx, "/f"); err != nil {
		t.Errorf("free agreement read failed: %v", err)
	}
}

func TestThrottledUnlimited(t *testing.T) {
	fs := NewMemFS("", nil)
	ctx := context.Background()
	_ = fs.WriteFile(ctx, "/f", []byte("x"))
	th := NewThrottled(fs, Agreement{})
	if _, err := th.ReadFile(ctx, "/f"); err != nil {
		t.Error(err)
	}
	if err := th.WriteFile(ctx, "/g", []byte("y")); err != nil {
		t.Error(err)
	}
}

func nodeName(i int) string { return string(rune('a'+i)) + "-node" }

func TestRangeReads(t *testing.T) {
	model := sim.DefaultCostModel()
	ctx := context.Background()

	// MemFS range read, with partial billing.
	mem := NewMemFS("", model)
	_ = mem.WriteFile(ctx, "/f", []byte("0123456789"))
	bill := sim.NewBill()
	got, err := mem.ReadRange(WithBill(ctx, bill), "/f", 2, 4)
	if err != nil || string(got) != "2345" {
		t.Fatalf("memfs range = %q, %v", got, err)
	}
	if bill.Bytes(sim.DeviceMemory) != 4 {
		t.Errorf("memfs range billed %d bytes", bill.Bytes(sim.DeviceMemory))
	}
	if _, err := mem.ReadRange(ctx, "/f", 8, 10); err == nil {
		t.Error("out-of-bounds range should fail")
	}
	if _, err := mem.ReadRange(ctx, "/missing", 0, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing range err = %v", err)
	}

	// LocalFS range read.
	lfs := NewLocalFS(t.TempDir(), model)
	_ = lfs.WriteFile(ctx, "/f", []byte("abcdefgh"))
	got, err = lfs.ReadRange(ctx, "/f", 1, 3)
	if err != nil || string(got) != "bcd" {
		t.Fatalf("localfs range = %q, %v", got, err)
	}
	if _, err := lfs.ReadRange(ctx, "/missing", 0, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("localfs missing range err = %v", err)
	}
	if _, err := lfs.ReadRange(ctx, "/f", 5, 100); err == nil {
		t.Error("localfs short range should fail")
	}

	// DFS range read spanning block boundaries.
	d := NewHDFS("hdfs", model)
	d.SetBlockSize(4)
	d.AddNode("n0", "r1")
	_ = d.WriteFile(ctx, "/f", []byte("0123456789ab"))
	got, err = d.ReadRange(ctx, "/f", 3, 6) // crosses blocks 0-1-2
	if err != nil || string(got) != "345678" {
		t.Fatalf("dfs range = %q, %v", got, err)
	}
	if _, err := d.ReadRange(ctx, "/f", 10, 10); err == nil {
		t.Error("dfs out-of-bounds range should fail")
	}
	if _, err := d.ReadRange(ctx, "/missing", 0, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("dfs missing err = %v", err)
	}
	// Down replica inside the range fails the read.
	d.SetNodeDown("n0", true)
	if _, err := d.ReadRange(ctx, "/f", 0, 5); !errors.Is(err, ErrUnavailable) {
		t.Errorf("dfs down-replica err = %v", err)
	}
}

func TestRouterRangeReadFallback(t *testing.T) {
	// A store without RangeReader support falls back to a full read.
	r := NewRouter(nil)
	r.Register(&fullReadOnlyStore{data: []byte("hello world")})
	got, err := r.ReadRange(context.Background(), "/fro/x", 6, 5)
	if err != nil || string(got) != "world" {
		t.Fatalf("fallback range = %q, %v", got, err)
	}
	if _, err := r.ReadRange(context.Background(), "/fro/x", 20, 5); err == nil {
		t.Error("fallback out-of-bounds should fail")
	}
}

// fullReadOnlyStore implements Store without RangeReader.
type fullReadOnlyStore struct{ data []byte }

func (f *fullReadOnlyStore) Scheme() string { return "fro" }
func (f *fullReadOnlyStore) ReadFile(context.Context, string) ([]byte, error) {
	return f.data, nil
}
func (f *fullReadOnlyStore) WriteFile(context.Context, string, []byte) error { return nil }
func (f *fullReadOnlyStore) Stat(context.Context, string) (FileInfo, error) {
	return FileInfo{Size: int64(len(f.data))}, nil
}
func (f *fullReadOnlyStore) List(context.Context, string) ([]string, error) { return nil, nil }
func (f *fullReadOnlyStore) Locations(string) []string                      { return nil }
func (f *fullReadOnlyStore) Device() sim.DeviceClass                        { return sim.DeviceHDD }

func TestStoreMetadataHooks(t *testing.T) {
	m := NewMemFS("", nil)
	m.SetDevice(sim.DeviceSSD)
	m.SetNodeID("node-7")
	if m.Device() != sim.DeviceSSD {
		t.Error("SetDevice")
	}
	if locs := m.Locations("/x"); len(locs) != 1 || locs[0] != "node-7" {
		t.Errorf("memfs locations = %v", locs)
	}
	l := NewLocalFS(t.TempDir(), nil)
	if l.Scheme() != "" || l.Device() != sim.DeviceHDD {
		t.Error("localfs scheme/device")
	}
	if l.Locations("/x") != nil {
		t.Error("localfs locations without node id")
	}
	l.SetNodeID("n1")
	if locs := l.Locations("/x"); len(locs) != 1 || locs[0] != "n1" {
		t.Errorf("localfs locations = %v", locs)
	}
	d := NewHDFS("hdfs", nil)
	if d.Scheme() != "hdfs" {
		t.Error("dfs scheme")
	}
}

func TestRouterLocationsAndDevice(t *testing.T) {
	model := sim.DefaultCostModel()
	d := NewHDFS("hdfs", model)
	d.AddNode("n0", "r1")
	r := NewRouter(NewMemFS("", model))
	r.Register(d)
	ctx := context.Background()
	_ = r.WriteFile(ctx, "/hdfs/f", []byte("x"))
	if locs := r.Locations("/hdfs/f"); len(locs) != 1 || locs[0] != "n0" {
		t.Errorf("router locations = %v", locs)
	}
	if r.Device("/hdfs/f") != sim.DeviceHDD {
		t.Error("router device for hdfs")
	}
	if r.Device("/local") != sim.DeviceMemory {
		t.Error("router device for local memfs")
	}
	// Replacing the local store via Register("").
	replacement := NewMemFS("", model)
	r.Register(replacement)
	s, _ := r.Resolve("/anything")
	if s != Store(replacement) {
		t.Error("Register with empty scheme should replace the local store")
	}
}

func TestLocalFSStatErrors(t *testing.T) {
	l := NewLocalFS(t.TempDir(), nil)
	if _, err := l.Stat(context.Background(), "/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("stat missing = %v", err)
	}
}
