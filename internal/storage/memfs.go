package storage

import (
	"context"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// MemFS is an in-memory store. It backs tests and models the log data that
// the paper's light-weight leaf process converts in place on online service
// machines. Reads charge memory-class cost.
type MemFS struct {
	scheme string
	model  *sim.CostModel
	device sim.DeviceClass
	// nodeID, when set, is reported as the data location of every file —
	// MemFS stands in for a single machine's local state.
	nodeID string

	mu    sync.RWMutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory store with the given scheme. A nil
// model disables cost charging.
func NewMemFS(scheme string, model *sim.CostModel) *MemFS {
	return &MemFS{scheme: scheme, model: model, device: sim.DeviceMemory, files: make(map[string][]byte)}
}

// SetDevice overrides the charged device class (e.g. DeviceHDD to model a
// local SATA disk).
func (m *MemFS) SetDevice(d sim.DeviceClass) { m.device = d }

// SetNodeID sets the node reported by Locations.
func (m *MemFS) SetNodeID(id string) { m.nodeID = id }

// Scheme implements Store.
func (m *MemFS) Scheme() string { return m.scheme }

// Device implements Store.
func (m *MemFS) Device() sim.DeviceClass { return m.device }

// ReadFile implements Store.
func (m *MemFS) ReadFile(ctx context.Context, path string) ([]byte, error) {
	m.mu.RLock()
	data, ok := m.files[path]
	m.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	charge(ctx, m.model, m.device, int64(len(data)))
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// WriteFile implements Store.
func (m *MemFS) WriteFile(ctx context.Context, path string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	m.files[path] = cp
	m.mu.Unlock()
	return nil
}

// Stat implements Store.
func (m *MemFS) Stat(ctx context.Context, path string) (FileInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[path]
	if !ok {
		return FileInfo{}, ErrNotFound
	}
	return FileInfo{Path: path, Size: int64(len(data))}, nil
}

// List implements Store.
func (m *MemFS) List(ctx context.Context, prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for p := range m.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Locations implements Store.
func (m *MemFS) Locations(string) []string {
	if m.nodeID == "" {
		return nil
	}
	return []string{m.nodeID}
}

// ReadRange implements RangeReader, charging only the bytes read.
func (m *MemFS) ReadRange(ctx context.Context, path string, off, length int64) ([]byte, error) {
	m.mu.RLock()
	data, ok := m.files[path]
	m.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	out, err := sliceRange(data, off, length)
	if err != nil {
		return nil, err
	}
	charge(ctx, m.model, m.device, length)
	return out, nil
}
