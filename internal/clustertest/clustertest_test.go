package clustertest

import (
	"errors"
	"testing"
	"time"

	feisu "repro"
)

// TestConcurrentQueriesBitIdenticalToSerial is the harness's acceptance
// run: 64 seeded concurrent queries (alternating interactive/batch) against
// a 4-slot admission queue deep enough that nothing sheds. Every result
// must render bit-identically to the serial oracle and both classes must be
// admitted (no starvation).
func TestConcurrentQueriesBitIdenticalToSerial(t *testing.T) {
	const n = 64
	res, err := Run(Options{
		Seed:          42,
		Queries:       n,
		MaxConcurrent: 4,
		QueueDepth:    n, // nothing sheds: every query must complete
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if o.Err != nil {
			t.Fatalf("query %d (%q, class=%s) failed: %v", i, o.SQL, o.Class, o.Err)
		}
		if want := res.Serial[o.SQL]; o.Canon != want {
			t.Errorf("query %d (%q) diverged from serial execution:\nconcurrent:\n%s\nserial:\n%s",
				i, o.SQL, o.Canon, want)
		}
	}
	if res.AdmittedByClass[0] == 0 || res.AdmittedByClass[1] == 0 {
		t.Errorf("a priority class starved: admitted=%v", res.AdmittedByClass)
	}
	if res.ShedByClass[0] != 0 || res.ShedByClass[1] != 0 {
		t.Errorf("queue depth %d must not shed %d queries: shed=%v", n, n, res.ShedByClass)
	}
	if got := res.AdmittedByClass[0] + res.AdmittedByClass[1]; got != n {
		t.Errorf("admitted %d queries, want %d", got, n)
	}
}

// TestShedQueriesTypedAndRowless floods a 1-slot, depth-1 controller so
// most submissions shed, and asserts the contract: a shed query returns an
// error matching ErrOverloaded (with an *OverloadedError carrying a
// retry-after hint) and never any rows; every completed query still matches
// the serial oracle bit-for-bit.
func TestShedQueriesTypedAndRowless(t *testing.T) {
	res, err := Run(Options{
		Seed:          7,
		Queries:       32,
		MaxConcurrent: 1,
		QueueDepth:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	shed, completed := 0, 0
	for i, o := range res.Outcomes {
		switch {
		case o.Err == nil:
			completed++
			if want := res.Serial[o.SQL]; o.Canon != want {
				t.Errorf("completed query %d (%q) diverged from serial:\n%s\nwant:\n%s", i, o.SQL, o.Canon, want)
			}
		case o.Shed:
			shed++
			if o.Rows != 0 || o.Canon != "" {
				t.Errorf("shed query %d returned partial rows: %d rows", i, o.Rows)
			}
			var oe *feisu.OverloadedError
			if !errors.As(o.Err, &oe) {
				t.Errorf("shed query %d error is not *OverloadedError: %v", i, o.Err)
			} else if oe.RetryAfter <= 0 {
				t.Errorf("shed query %d carries no retry-after hint: %+v", i, oe)
			}
		default:
			t.Errorf("query %d failed with a non-admission error: %v", i, o.Err)
		}
	}
	if completed == 0 {
		t.Error("no queries completed")
	}
	if shed == 0 {
		t.Error("1-slot/depth-1 queue under 32 concurrent queries should shed")
	}
	if got := res.ShedByClass[0] + res.ShedByClass[1]; got != int64(shed) {
		t.Errorf("controller counted %d sheds, harness observed %d", got, shed)
	}
}

// TestLiveProgressObservedDuringConcurrency exercises the live progress
// registry under real concurrency: while 64 queries contend for 4 slots,
// the harness's observer polls ActiveQueries (the \watch / /debug/queries
// surface) and every snapshot must satisfy the registry's invariants —
// legal states, queued queries not yet planned, task counters within plan
// bounds. Whether a poll lands while >=2 queries are in flight is a timing
// accident, so that part retries the whole run a few times; the invariant
// check is enforced on every attempt.
func TestLiveProgressObservedDuringConcurrency(t *testing.T) {
	for attempt := 1; ; attempt++ {
		res, err := Run(Options{
			Seed:          23,
			Queries:       64,
			MaxConcurrent: 4,
			QueueDepth:    64,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.ProgressViolations) > 0 {
			t.Fatalf("progress snapshots violated invariants: %v", res.ProgressViolations)
		}
		if res.ProgressSamples > 0 && res.MaxActive >= 2 {
			return
		}
		if attempt == 5 {
			t.Fatalf("observer never caught concurrent queries in %d runs (samples=%d, maxActive=%d)",
				attempt, res.ProgressSamples, res.MaxActive)
		}
	}
}

// TestInjectedClockMeasuresQueueWait checks the clock injection path: with
// the harness clock installed, a queued query's recorded wait is expressed
// in the injected clock's microsecond ticks, not wall time.
func TestInjectedClockMeasuresQueueWait(t *testing.T) {
	res, err := Run(Options{
		Seed:          11,
		Queries:       16,
		MaxConcurrent: 1,
		QueueDepth:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	queued := 0
	for i, o := range res.Outcomes {
		if o.Err != nil {
			t.Fatalf("query %d: %v", i, o.Err)
		}
		if o.QueueWait > 0 {
			queued++
			// The injected clock advances 1µs per reading; a recorded wait
			// is a small multiple of that, never a wall-clock-sized value.
			if o.QueueWait > time.Millisecond {
				t.Errorf("query %d wait %v is not on the injected clock", i, o.QueueWait)
			}
		}
	}
	if queued == 0 {
		t.Error("16 concurrent queries against 1 slot: some query should have measured a queue wait")
	}
}
