// Package clustertest is a deterministic concurrency test harness for the
// admission-controlled cluster: it runs a seeded query workload once
// serially (the oracle) and once as N concurrent submissions against a
// slot-limited master over an injected clock, and reports per-query
// outcomes in a form tests can assert exactly — results bit-identical to
// serial execution, both priority classes served, and shed queries typed
// (ErrOverloaded) with no partial rows. The harness has no timing
// assumptions: concurrency is real (the tests run under -race) but every
// assertion is on values, never on wall-clock interleavings.
package clustertest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	feisu "repro"
	"repro/internal/workload"
)

// Options shapes one harness run.
type Options struct {
	// Seed drives query generation; same seed = same workload.
	Seed int64
	// Queries is the number of concurrent submissions (alternating
	// interactive/batch classes).
	Queries int
	// MaxConcurrent / QueueDepth / QueueDeadline configure the concurrent
	// system's admission controller. QueueDepth 0 uses the controller
	// default (2×MaxConcurrent) — size it >= Queries to forbid sheds.
	MaxConcurrent int
	QueueDepth    int
	QueueDeadline time.Duration
	// Cluster sizing (defaults: 4 leaves, 4 partitions, 512 rows/part).
	Leaves      int
	Partitions  int
	RowsPerPart int
}

// Outcome is one concurrent submission's result.
type Outcome struct {
	SQL   string
	Class feisu.Priority
	// Canon is the canonical result rendering ("" when the query errored).
	Canon string
	// Rows is the result row count (shed queries must leave it 0).
	Rows int
	Err  error
	// Shed reports errors.Is(Err, ErrOverloaded).
	Shed bool
	// QueueWait is the admission wait the master recorded.
	QueueWait time.Duration
}

// Result is a full harness run.
type Result struct {
	// Serial maps each workload query to its oracle rendering.
	Serial map[string]string
	// Outcomes holds the concurrent submissions in submission order.
	Outcomes []Outcome
	// AdmittedByClass / ShedByClass are the admission controller's per-class
	// counters after the run (indices: 0 interactive, 1 batch).
	AdmittedByClass [2]int64
	ShedByClass     [2]int64
	// MaxActive is the largest number of simultaneously registered queries
	// any live-progress poll observed during the concurrent phase.
	MaxActive int
	// ProgressSamples counts polls that saw at least one active query.
	ProgressSamples int
	// ProgressViolations lists invariant breaches observed in any
	// ActiveQueries snapshot (empty on a correct run).
	ProgressViolations []string
}

// Canon renders a result canonically: the column header plus every row's
// values (types.Value.String is bit-exact for all scalar types), row lines
// sorted so legal merge orderings compare equal.
func Canon(res *feisu.Result) string {
	if res == nil {
		return ""
	}
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		lines = append(lines, strings.Join(cells, "|"))
	}
	sort.Strings(lines)
	return strings.Join(res.Columns, "|") + "\n" + strings.Join(lines, "\n")
}

// Workload generates the seeded query list: aggregations and small scans
// over T1's core columns, every query deterministic for a given seed.
func Workload(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	aggs := []string{"COUNT(*)", "SUM(clicks)", "MIN(uid)", "MAX(dwell)"}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			out = append(out, fmt.Sprintf("SELECT %s FROM T1 WHERE clicks > %d",
				aggs[rng.Intn(len(aggs))], rng.Intn(8)))
		case 1:
			out = append(out, fmt.Sprintf("SELECT clicks, COUNT(*) AS n FROM T1 WHERE dwell <= %d GROUP BY clicks",
				60+rng.Intn(200)))
		default:
			out = append(out, fmt.Sprintf("SELECT uid, clicks FROM T1 WHERE uid < %d ORDER BY uid LIMIT %d",
				10500+rng.Intn(2000), 1+rng.Intn(16)))
		}
	}
	return out
}

// Clock is the harness's injected clock: strictly monotone, advancing a
// fixed step per reading, so queue-wait measurements depend on the number
// of clock readings, never on scheduler timing.
type Clock struct {
	mu sync.Mutex
	t  time.Time
}

// NewClock starts an injected clock at a fixed epoch.
func NewClock() *Clock {
	return &Clock{t: time.Unix(1_480_000_000, 0)}
}

// Now returns the next reading (advances 1µs per call).
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Microsecond)
	return c.t
}

// newSystem builds a harness deployment and loads the seeded T1 slice onto
// the in-memory store (no replica placement: scheduling is deterministic).
func newSystem(opts Options, admission bool) (*feisu.System, error) {
	cfg := feisu.Config{
		Leaves:            opts.Leaves,
		HeartbeatInterval: -1, // manual heartbeats: nothing ticks in the background
	}
	if admission {
		cfg.MaxConcurrentQueries = opts.MaxConcurrent
		cfg.MaxQueueDepth = opts.QueueDepth
		cfg.QueueWaitDeadline = opts.QueueDeadline
	}
	sys, err := feisu.New(cfg)
	if err != nil {
		return nil, err
	}
	spec := workload.T1Spec()
	spec.PathPrefix = "/mem/t1"
	spec.Partitions = opts.Partitions
	spec.RowsPerPart = opts.RowsPerPart
	spec.Fields = 10
	ctx := context.Background()
	meta, err := workload.Generate(ctx, sys.Router(), spec)
	if err == nil {
		err = sys.RegisterTable(ctx, meta)
	}
	if err != nil {
		sys.Close()
		return nil, err
	}
	return sys, nil
}

// Run executes the harness: serial oracle first, then opts.Queries
// concurrent submissions with alternating priority classes against an
// admission-controlled system on the injected clock.
func Run(opts Options) (*Result, error) {
	if opts.Queries <= 0 {
		opts.Queries = 64
	}
	if opts.Leaves <= 0 {
		opts.Leaves = 4
	}
	if opts.Partitions <= 0 {
		opts.Partitions = 4
	}
	if opts.RowsPerPart <= 0 {
		opts.RowsPerPart = 512
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 4
	}
	queries := Workload(opts.Seed, opts.Queries)
	ctx := context.Background()
	out := &Result{Serial: make(map[string]string, len(queries))}

	// Serial oracle: no admission control, one query at a time.
	serialSys, err := newSystem(opts, false)
	if err != nil {
		return nil, err
	}
	for _, q := range queries {
		if _, seen := out.Serial[q]; seen {
			continue
		}
		res, err := serialSys.Query(ctx, q)
		if err != nil {
			serialSys.Close()
			return nil, fmt.Errorf("serial oracle %q: %w", q, err)
		}
		out.Serial[q] = Canon(res)
	}
	serialSys.Close()

	// Concurrent run under admission control on the injected clock.
	sys, err := newSystem(opts, true)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	clock := NewClock()
	sys.Master().Admission.SetNow(clock.Now)
	sys.Master().Manager.Now = clock.Now
	if err := sys.Heartbeat(); err != nil { // re-stamp liveness on the injected clock
		return nil, err
	}

	// Live-progress observer: while the concurrent submissions run, poll the
	// progress registry the same way /debug/queries does and check every
	// snapshot's invariants. Assertions are on values (states legal, task
	// counters within plan bounds), never on which queries happen to be
	// in flight at a poll.
	observerDone := make(chan struct{})
	observerStop := make(chan struct{})
	go func() {
		defer close(observerDone)
		for {
			select {
			case <-observerStop:
				return
			default:
			}
			active := sys.ActiveQueries()
			if len(active) > 0 {
				out.ProgressSamples++
				if len(active) > out.MaxActive {
					out.MaxActive = len(active)
				}
			}
			for _, p := range active {
				switch {
				case p.ID == "":
					out.ProgressViolations = append(out.ProgressViolations, "active query with empty ID")
				case p.State != "queued" && p.State != "running":
					out.ProgressViolations = append(out.ProgressViolations,
						fmt.Sprintf("%s: illegal state %q", p.ID, p.State))
				case p.State == "queued" && p.TasksPlanned != 0:
					out.ProgressViolations = append(out.ProgressViolations,
						fmt.Sprintf("%s: queued but %d tasks planned", p.ID, p.TasksPlanned))
				case p.TasksDispatched > p.TasksPlanned:
					out.ProgressViolations = append(out.ProgressViolations,
						fmt.Sprintf("%s: dispatched %d > planned %d", p.ID, p.TasksDispatched, p.TasksPlanned))
				case p.TasksDone > p.TasksPlanned:
					out.ProgressViolations = append(out.ProgressViolations,
						fmt.Sprintf("%s: done %d > planned %d", p.ID, p.TasksDone, p.TasksPlanned))
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	out.Outcomes = make([]Outcome, opts.Queries)
	var wg sync.WaitGroup
	for i := 0; i < opts.Queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			class := feisu.PriorityInteractive
			if i%2 == 1 {
				class = feisu.PriorityBatch
			}
			q := queries[i]
			res, stats, err := sys.QueryStats(ctx, q, feisu.WithPriority(class))
			o := Outcome{SQL: q, Class: class, Err: err, Shed: errors.Is(err, feisu.ErrOverloaded)}
			if res != nil {
				o.Canon = Canon(res)
				o.Rows = len(res.Rows)
			}
			if stats != nil {
				o.QueueWait = stats.QueueWait
			}
			out.Outcomes[i] = o
		}(i)
	}
	wg.Wait()
	close(observerStop)
	<-observerDone

	snap := sys.ClusterHealth().Admission
	out.AdmittedByClass = [2]int64{snap.Admitted[0], snap.Admitted[1]}
	out.ShedByClass = [2]int64{snap.Shed[0], snap.Shed[1]}
	return out, nil
}
