package feisu

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestTelemetryEndToEnd: a full System with SmartIndex budget, SSD cache
// and a slow-query threshold serves /metrics (with per-leaf index and
// cache series plus latency histograms), /healthz, and /debug/slowlog with
// a per-stage breakdown; \top's renderer shows every leaf.
func TestTelemetryEndToEnd(t *testing.T) {
	sys, err := New(Config{
		Leaves:                 4,
		CacheBytes:             1 << 20,
		CachePrefixes:          []string{"/hdfs/"},
		IndexMemoryBytes:       1 << 20,
		SlowQueryWallThreshold: time.Nanosecond, // everything is slow
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 400)

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := sys.Query(ctx, "SELECT COUNT(*) FROM visits WHERE clicks > 2"); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := sys.StartTelemetry("127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := scrape(t, srv.URL()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`feisu_index_bytes{leaf="leaf0"}`,
		`feisu_index_budget_bytes{leaf="leaf0"} 1.048576e+06`,
		`feisu_cache_hit_ratio{leaf="leaf0"}`,
		`feisu_cache_capacity_bytes{leaf="leaf0"} 1.048576e+06`,
		`feisu_leaf_tasks_total{leaf="leaf0"}`,
		"# TYPE feisu_query_wall_seconds histogram",
		`feisu_query_wall_seconds_bucket{le="+Inf"} 3`,
		"feisu_query_sim_seconds_count 3",
		"feisu_queries_total 3",
		`feisu_node_up{kind="leaf",node="leaf0"} 1`,
		// Legacy flat counters surface under sanitized names.
		"leaf0_index_hits",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if code, body = scrape(t, srv.URL()+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	// Pprof is off by default.
	if code, _ = scrape(t, srv.URL()+"/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("/debug/pprof without the flag = %d, want 404", code)
	}

	// Slowlog: every query crossed the 1ns wall threshold and carries a
	// per-stage breakdown from its trace.
	entries := sys.Slowlog().Entries()
	if len(entries) != 3 {
		t.Fatalf("slowlog entries = %d, want 3", len(entries))
	}
	top := entries[0]
	if top.Fingerprint == "" || top.Tasks == 0 {
		t.Errorf("slowlog entry incomplete: %+v", top)
	}
	var stageNames []string
	for _, st := range top.Stages {
		stageNames = append(stageNames, st.Name)
	}
	joined := strings.Join(stageNames, ",")
	if !strings.Contains(joined, "master/execute") || !strings.Contains(joined, "leaf tasks") {
		t.Errorf("stages = %v", stageNames)
	}
	if top.Counters["rows.scanned"] == 0 {
		t.Errorf("slowlog counters missing rows.scanned: %v", top.Counters)
	}
	if code, body = scrape(t, srv.URL()+"/debug/slowlog"); code != 200 || !strings.Contains(body, "SELECT COUNT(*)") {
		t.Errorf("/debug/slowlog = %d %q", code, body)
	}

	// The \top dashboard shows every leaf (and the stem) with live load
	// after a heartbeat refresh.
	if err := sys.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	health := sys.ClusterHealth()
	topOut := health.Render()
	for i := 0; i < 4; i++ {
		if !strings.Contains(topOut, fmt.Sprintf("leaf%d", i)) {
			t.Errorf("\\top missing leaf%d:\n%s", i, topOut)
		}
	}
	if !strings.Contains(topOut, "5 alive") { // 4 leaves + 1 stem
		t.Errorf("\\top header wrong:\n%s", topOut)
	}
	var tasksSeen int64
	for _, n := range health.Nodes {
		tasksSeen += n.Load.TasksDone
	}
	if tasksSeen == 0 {
		t.Errorf("\\top shows no completed tasks after 3 queries:\n%s", topOut)
	}
}

// TestTelemetryScrapeDoesNotBlockQueries runs scrapes and queries
// concurrently; under -race this checks the scrape path (registry
// snapshots, gauge funcs, health view) against the query hot path.
func TestTelemetryScrapeDoesNotBlockQueries(t *testing.T) {
	sys, err := New(Config{
		Leaves:                4,
		CacheBytes:            1 << 20,
		CachePrefixes:         []string{"/hdfs/"},
		SlowQuerySimThreshold: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 200)

	srv, err := sys.StartTelemetry("127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q := fmt.Sprintf("SELECT COUNT(*) FROM visits WHERE clicks > %d", i%7)
				if _, err := sys.Query(ctx, q); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if code, body := scrape(t, srv.URL()+"/metrics"); code != 200 || len(body) == 0 {
					t.Errorf("scrape %d: code=%d len=%d", i, code, len(body))
					return
				}
				_, _ = scrape(t, srv.URL()+"/healthz")
				_, _ = scrape(t, srv.URL()+"/debug/slowlog")
			}
		}()
	}
	wg.Wait()

	if got := sys.Slowlog().Total(); got != 30 {
		t.Errorf("slowlog total = %d, want 30", got)
	}
	if _, body := scrape(t, srv.URL()+"/metrics"); !strings.Contains(body, "feisu_queries_total 30") {
		t.Errorf("final scrape missing query total")
	}
}
