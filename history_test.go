package feisu

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestPersonalizationPinsHotPredicates(t *testing.T) {
	sys, err := New(Config{
		Leaves:               2,
		PersonalizeThreshold: 3,
		IndexTTL:             time.Nanosecond, // everything expires instantly...
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 200)

	ctx := context.Background()
	const q = "SELECT COUNT(*) FROM visits WHERE clicks > 4"
	// With a nanosecond TTL every entry expires before reuse...
	for i := 0; i < 3; i++ {
		if _, err := sys.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	hist := sys.History()
	if hist == nil {
		t.Fatal("history should be enabled")
	}
	if got := hist.PinnedPredicates(); len(got) != 1 || got[0] != "clicks > 4" {
		t.Fatalf("pinned = %v", got)
	}
	// ...but once the predicate is pinned, its entries survive the TTL:
	// the next run stores pinned entries, and the one after hits them.
	if _, err := sys.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	sys.ResetIndexCounters()
	if _, err := sys.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if st := sys.IndexStats(); st.Hits == 0 {
		t.Errorf("pinned predicate should hit despite the TTL: %+v", st)
	}
}

func TestHistoryHotPredicates(t *testing.T) {
	sys, err := New(Config{Leaves: 1, PersonalizeThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 100)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := sys.Query(ctx, "SELECT COUNT(*) FROM visits WHERE clicks > 7"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Query(ctx, "SELECT COUNT(*) FROM visits WHERE clicks > 1"); err != nil {
		t.Fatal(err)
	}
	hot := sys.History().HotPredicates("", 2)
	if len(hot) != 1 || hot[0] != "clicks > 7" {
		t.Errorf("hot = %v", hot)
	}
	if got := sys.History().HotPredicates("", 1); len(got) != 2 || got[0] != "clicks > 7" {
		t.Errorf("ordered hot = %v", got)
	}
}

func TestHistoryDisabledByDefault(t *testing.T) {
	sys, err := New(Config{Leaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.History() != nil {
		t.Error("history should be nil when personalization is off")
	}
}

func TestIngestOnce(t *testing.T) {
	sys, err := New(Config{Leaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()

	schema := MustSchema(
		Field{Name: "ts", Type: Int64},
		Field{Name: "msg", Type: String},
	)
	write := func(path, content string) {
		t.Helper()
		if err := sys.Router().WriteFile(ctx, path, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	write("/raw/logs/a.json", "{\"ts\": 1, \"msg\": \"boot\"}\n{\"ts\": 2, \"msg\": \"ready\"}")

	n, err := sys.IngestOnce(ctx, "applogs", schema, "/raw/logs", "/hdfs/applogs")
	if err != nil || n != 2 {
		t.Fatalf("ingest = %d, %v", n, err)
	}
	res, err := sys.Query(ctx, "SELECT COUNT(*) FROM applogs")
	if err != nil || res.Rows[0][0].I != 2 {
		t.Fatalf("count = %v, %v", res.Rows, err)
	}

	// A second file arrives; re-ingest extends the table without
	// duplicating the first file.
	write("/raw/logs/b.json", "{\"ts\": 3, \"msg\": \"warn\"}")
	n, err = sys.IngestOnce(ctx, "applogs", schema, "/raw/logs", "/hdfs/applogs")
	if err != nil || n != 1 {
		t.Fatalf("second ingest = %d, %v", n, err)
	}
	res, err = sys.Query(ctx, "SELECT COUNT(*) FROM applogs")
	if err != nil || res.Rows[0][0].I != 3 {
		t.Fatalf("count after growth = %v, %v", res.Rows, err)
	}
}

func TestWatchJSONGrowsTable(t *testing.T) {
	sys, err := New(Config{Leaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	schema := MustSchema(Field{Name: "ts", Type: Int64})

	stop, err := sys.WatchJSON("stream", schema, "/raw/stream", "/hdfs/stream", 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// Table exists (empty) from the start.
	res, err := sys.Query(ctx, "SELECT COUNT(*) FROM stream")
	if err != nil || res.Rows[0][0].I != 0 {
		t.Fatalf("empty table = %v, %v", res.Rows, err)
	}

	for i := 0; i < 3; i++ {
		path := fmt.Sprintf("/raw/stream/f%d.json", i)
		if err := sys.Router().WriteFile(ctx, path, []byte(fmt.Sprintf("{\"ts\": %d}", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		res, err := sys.Query(ctx, "SELECT COUNT(*) FROM stream")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].I == 3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("watcher never caught up: count = %v", res.Rows[0][0])
		}
		time.Sleep(2 * time.Millisecond)
	}
}
