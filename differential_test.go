package feisu

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sqltest"
	"repro/internal/workload"
)

// newJoinSystem builds a deployment with the generated fact/dimension
// join pair registered, and hands back the same rows as in-memory tables
// for the sqltest oracle. mut adjusts the config (e.g. to force the
// repartition path).
func newJoinSystem(t *testing.T, mut func(*Config)) (*System, []*sqltest.Table) {
	t.Helper()
	cfg := Config{Leaves: 4, HeartbeatInterval: -1}
	if mut != nil {
		mut(&cfg)
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })

	ctx := context.Background()
	spec := workload.DefaultJoinSpec()
	factMeta, dimMeta, factRows, dimRows, err := workload.GenerateJoin(ctx, sys.Router(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterTable(ctx, factMeta); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterTable(ctx, dimMeta); err != nil {
		t.Fatal(err)
	}
	tables := []*sqltest.Table{
		{Name: spec.FactName, Schema: workload.FactJoinSchema(), Rows: factRows},
		{Name: spec.DimName, Schema: workload.DimJoinSchema(), Rows: dimRows},
	}
	return sys, tables
}

// forceShuffle drops the broadcast threshold to one byte, so every join
// takes the repartition path.
func forceShuffle(c *Config) {
	c.BroadcastThreshold = 1
	c.ShufflePartitions = 3
}

// renderRefRows canonicalizes an oracle result the same way renderRows
// canonicalizes an engine result: sorted rendered lines, so comparisons
// are bag comparisons.
func renderRefRows(res *sqltest.Result) string {
	conv := &Result{Rows: res.Rows}
	return renderRows(conv)
}

// TestDifferentialJoinOracle is the differential harness's core: hundreds
// of generated join/GROUP BY queries run through the full cluster — on
// both the repartition-shuffle path and the broadcast path — and every
// result must bag-match the naive single-process reference executor.
// Queries are deterministic as bags by construction (LIMIT only appears
// under an ORDER BY covering all selected columns).
func TestDifferentialJoinOracle(t *testing.T) {
	spec := workload.DefaultJoinSpec()
	queries := workload.JoinQueries(spec.FactName, spec.DimName, 20250809, 520)

	shuffleSys, tables := newJoinSystem(t, forceShuffle)
	broadcastSys, _ := newJoinSystem(t, nil)

	ctx := context.Background()
	for i, q := range queries {
		sys, path := shuffleSys, "shuffle"
		if i%4 == 3 {
			sys, path = broadcastSys, "broadcast"
		}
		got, err := sys.Query(ctx, q)
		if err != nil {
			t.Fatalf("cluster (%s) #%d %q: %v", path, i, q, err)
		}
		want, err := sqltest.Run(q, tables...)
		if err != nil {
			t.Fatalf("oracle #%d %q: %v", i, q, err)
		}
		if g, w := renderRows(got), renderRefRows(want); g != w {
			t.Fatalf("divergence (%s) #%d on %q:\ncluster: %s\noracle:  %s", path, i, q, g, w)
		}
	}
}

// TestDifferentialShuffleVsBroadcast cross-checks the two engine join
// strategies directly against each other on the same query stream — a
// second, oracle-free differential axis.
func TestDifferentialShuffleVsBroadcast(t *testing.T) {
	spec := workload.DefaultJoinSpec()
	queries := workload.JoinQueries(spec.FactName, spec.DimName, 995511, 60)

	shuffleSys, _ := newJoinSystem(t, forceShuffle)
	broadcastSys, _ := newJoinSystem(t, nil)

	ctx := context.Background()
	for i, q := range queries {
		a, err := shuffleSys.Query(ctx, q)
		if err != nil {
			t.Fatalf("shuffle #%d %q: %v", i, q, err)
		}
		b, err := broadcastSys.Query(ctx, q)
		if err != nil {
			t.Fatalf("broadcast #%d %q: %v", i, q, err)
		}
		if g, w := renderRows(a), renderRows(b); g != w {
			t.Fatalf("strategy divergence #%d on %q:\nshuffle:   %s\nbroadcast: %s", i, q, g, w)
		}
	}
}

// TestDifferentialRepartitionActuallyUsed guards the harness against
// vacuity: under the forced threshold the join queries must execute more
// tasks than the pure broadcast plan (map tasks on both sides), proving
// the shuffle path — not broadcast — produced the compared rows.
func TestDifferentialRepartitionActuallyUsed(t *testing.T) {
	sys, _ := newJoinSystem(t, forceShuffle)
	spec := workload.DefaultJoinSpec()
	ctx := context.Background()
	q := "SELECT f.id AS a, d.name AS b FROM " + spec.FactName + " f JOIN " + spec.DimName + " d ON f.k = d.k"
	_, stats, err := sys.QueryStats(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	// Broadcast would run one task per fact partition (4); repartition
	// adds the dimension-side map tasks.
	if stats.Tasks <= spec.FactPartitions {
		t.Fatalf("expected repartition map tasks on both sides, got %d tasks", stats.Tasks)
	}
	explain, err := sys.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "repartition") {
		t.Fatalf("forced-shuffle plan is not repartitioned:\n%s", explain)
	}
}
