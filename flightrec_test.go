package feisu

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/events"
	"repro/internal/workload"
)

// flightrecJournal runs a fixed serial query stream under lifecycle-only
// seeded chaos (kills, manual ticks) and returns the canonical journal as
// comparable signature lines. Everything that varies run-to-run is excluded
// by construction: arrival Seq and Wall are dropped; hedging is off
// (wall-clock EWMAs); scans are serial; queries run one at a time with one
// ChaosTick before each, so placement and the fault schedule depend only on
// the seed.
func flightrecJournal(t *testing.T, seed int64) []string {
	t.Helper()
	sys, err := New(Config{
		Leaves:            2,
		HeartbeatInterval: -1,
		ScanWorkers:       -1,
		HedgeDelay:        -1,
		Chaos: &chaos.Config{
			Seed: seed,
			Lifecycle: chaos.LifecycleChaos{
				Kill:      0.5,
				DownTicks: 1,
				MaxDown:   1,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	ctx := context.Background()
	spec := workload.T1Spec()
	spec.PathPrefix = "/mem/t1"
	spec.Partitions = 2
	spec.RowsPerPart = 256
	spec.Fields = 10
	meta, err := workload.Generate(ctx, sys.Router(), spec)
	if err == nil {
		err = sys.RegisterTable(ctx, meta)
	}
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"SELECT COUNT(*) FROM T1 WHERE clicks > 3",
		"SELECT uid, clicks FROM T1 WHERE clicks > 5 ORDER BY uid LIMIT 5",
		"SELECT COUNT(*), SUM(clicks) FROM T1 WHERE dwell <= 120",
		"SELECT COUNT(*) FROM T1 WHERE clicks > 3",
		"SELECT uid, clicks FROM T1 WHERE clicks > 8 ORDER BY uid LIMIT 5",
		"SELECT SUM(clicks) FROM T1 WHERE clicks > 2",
	}
	for _, q := range queries {
		sys.ChaosTick()
		if _, err := sys.Query(ctx, q); err != nil {
			t.Fatalf("seed %d: %q: %v", seed, q, err)
		}
	}

	evs := sys.Events().Canonical()
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = fmt.Sprintf("%s#%d %s q=%s t=%d sim=%s %s",
			e.Site, e.SiteSeq, e.Kind, e.Query, e.Task, e.Sim, e.Detail)
	}
	return out
}

// TestFlightRecorderDeterministicJournal is the ISSUE's chaos-integration
// invariant: the same seeded fault schedule over the same workload produces
// the same event sequence. Two fresh systems run an identical stream under
// identical lifecycle chaos; their canonical journals (per-site order,
// excluding arrival Seq and wall clocks) must match line for line —
// including the chaos.* fault events bridged from the injection plane and
// the task.retry recovery they trigger.
func TestFlightRecorderDeterministicJournal(t *testing.T) {
	for _, seed := range []int64{7, 19} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			a := flightrecJournal(t, seed)
			b := flightrecJournal(t, seed)
			if len(a) != len(b) {
				t.Fatalf("journal lengths diverged: %d vs %d\nrun A:\n%s\nrun B:\n%s",
					len(a), len(b), strings.Join(a, "\n"), strings.Join(b, "\n"))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("journals diverged at canonical line %d:\nrun A: %s\nrun B: %s",
						i, a[i], b[i])
				}
			}
			// The run must actually have exercised chaos: at least one
			// bridged fault event, or the determinism claim is vacuous for
			// the recovery paths.
			var chaosLines int
			for _, line := range a {
				if strings.Contains(line, events.ChaosPrefix) {
					chaosLines++
				}
			}
			if chaosLines == 0 {
				t.Fatalf("seed %d fired no chaos events; journal:\n%s", seed, strings.Join(a, "\n"))
			}
		})
	}
}

// TestFlightRecorderJournalChain asserts the per-query causal chain the CI
// smoke test relies on: one clean query journals submit -> admitted ->
// scheduled -> dispatched -> leaf exec -> collected -> done, all stitched
// by the same query ID, and ForQuery returns them in causal site order.
func TestFlightRecorderJournalChain(t *testing.T) {
	sys, err := New(Config{Leaves: 2, HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 200)

	_, stats, err := sys.QueryStats(context.Background(),
		"SELECT COUNT(*) FROM visits WHERE clicks > 5")
	if err != nil {
		t.Fatal(err)
	}
	if stats.QueryID == "" {
		t.Fatal("query finished without a QueryID")
	}
	evs := sys.Events().ForQuery(stats.QueryID)
	seen := make(map[events.Kind]bool, len(evs))
	for _, e := range evs {
		if e.Query != stats.QueryID {
			t.Errorf("ForQuery leaked event for %q: %s", e.Query, e.String())
		}
		seen[e.Kind] = true
	}
	for _, want := range []events.Kind{
		events.QuerySubmit, events.QueryAdmitted, events.TaskScheduled,
		events.TaskDispatched, events.LeafExec, events.TaskCollected,
		events.QueryDone,
	} {
		if !seen[want] {
			t.Errorf("journal missing %q; got %d events:\n%s", want, len(evs), renderEvents(evs))
		}
	}
}

func renderEvents(evs []events.Event) string {
	var sb strings.Builder
	for _, e := range evs {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
