package feisu

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/events"
	"repro/internal/workload"
)

// TestShuffleEquivalenceUnderChaos extends the chaos-equivalence
// invariant to the repartition path: a fixed join workload run under
// seeded fault injection — leaf kills, dropped and duplicated shuffle
// frames, read errors, stalls — must return exactly the fault-free rows,
// or fail with the typed cluster.ErrShuffleFailed. Shuffle map retries
// re-partition identical input identically and reducers commit exactly
// one attempt per task, so a retried shuffle cannot silently drop or
// duplicate join matches; and because dropping a map task drops matches,
// the engine refuses to degrade to partial results even when the query
// explicitly allows them.
func TestShuffleEquivalenceUnderChaos(t *testing.T) {
	spec := workload.DefaultJoinSpec()
	queries := workload.JoinQueries(spec.FactName, spec.DimName, 31337, 25)
	ctx := context.Background()

	// Fault-free baseline on the same forced-repartition configuration.
	baseSys, _ := newJoinSystem(t, forceShuffle)
	baseRows := make([]string, len(queries))
	for i, q := range queries {
		res, err := baseSys.Query(ctx, q)
		if err != nil {
			t.Fatalf("baseline %q: %v", q, err)
		}
		baseRows[i] = renderRows(res)
	}

	var retries, mapsDone, failures int
	for _, seed := range []int64{1, 2, 3} {
		sys, _ := newJoinSystem(t, func(c *Config) {
			forceShuffle(c)
			c.TaskTimeout = 250 * time.Millisecond
			c.Chaos = &chaos.Config{
				Seed: seed,
				Transport: chaos.TransportChaos{
					Drop:      0.04,
					Delay:     0.10,
					MaxDelay:  2 * time.Millisecond,
					Duplicate: 0.03,
				},
				Storage: chaos.StorageChaos{
					SlowRead:      0.05,
					SlowReadDelay: time.Millisecond,
					ReadErr:       0.01,
					Corrupt:       0.01,
				},
				Lifecycle: chaos.LifecycleChaos{
					Kill:          0.20,
					DownTicks:     2,
					MaxDown:       1,
					Straggle:      0.10,
					StraggleDelay: 3 * time.Millisecond,
					StraggleTicks: 2,
					// Pairwise partitions can outlive the retry budget;
					// they are covered by the soak test.
				},
			}
			c.Chaos.Lifecycle.TickInterval = 0 // ChaosTick per query
		})
		for i, q := range queries {
			sys.ChaosTick()
			res, err := sys.Query(ctx, q, WithMinProcessedRatio(0.5))
			if err != nil {
				// The one acceptable failure mode: the typed shuffle
				// error, even though the query allows partial results.
				if !errors.Is(err, cluster.ErrShuffleFailed) {
					t.Fatalf("seed %d query %q: untyped failure %v", seed, q, err)
				}
				failures++
				continue
			}
			if got := renderRows(res); got != baseRows[i] {
				t.Fatalf("chaos (seed %d) diverged on %q:\nchaos: %s\nclean: %s", seed, q, got, baseRows[i])
			}
		}
		// The flight recorder's shuffle stream shows what actually
		// happened: map completions prove the repartition path ran, and
		// retry events record every re-dispatched attempt.
		for _, e := range sys.Events().Events() {
			switch e.Kind {
			case events.ShuffleMap:
				mapsDone++
			case events.ShuffleRetry:
				retries++
			}
		}
	}
	if mapsDone == 0 {
		t.Fatal("no shuffle map tasks ran under chaos; the equivalence run proved nothing")
	}
	if retries == 0 {
		t.Fatal("chaos never forced a shuffle retry; raise the drop/kill rates so the retry path is exercised")
	}
	t.Logf("shuffle chaos: %d map completions, %d retries, %d typed failures across 3 seeds", mapsDone, retries, failures)
}
