package feisu

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/workload"
)

// rescacheEquivQueries emits a cache-eligible stream with deliberate literal
// repetition: thresholds repeat (exact hits) and widen-then-narrow
// (subsumption hits), mixed with aggregations that are exact-hit only.
func rescacheEquivQueries(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0: // wide range first, narrow ones subsume from it
			out = append(out, fmt.Sprintf("SELECT uid, clicks FROM T1 WHERE clicks > %d", 2+rng.Intn(3)))
		case 1:
			out = append(out, fmt.Sprintf("SELECT uid, clicks FROM T1 WHERE clicks > %d", 8+rng.Intn(6)))
		case 2:
			out = append(out, fmt.Sprintf("SELECT url, pos FROM T1 WHERE pos <= %d", 3+rng.Intn(6)))
		case 3:
			out = append(out, fmt.Sprintf("SELECT COUNT(*), SUM(clicks) FROM T1 WHERE clicks > %d", 2+rng.Intn(8)))
		default:
			out = append(out, fmt.Sprintf("SELECT uid, clicks FROM T1 WHERE clicks > %d AND pos <= %d",
				2+rng.Intn(4), 4+rng.Intn(5)))
		}
	}
	return out
}

// TestResultCacheEquivalenceUnderChaos is the cache-correctness invariant:
// on the same seeded delay-chaos deployment, a query stream answered through
// the semantic result cache (exact hits and subsumption re-filters) returns
// exactly the rows of cold execution with the cache bypassed per query. Runs
// across three chaos seeds; the counters must prove both reuse paths fired,
// or the equivalence is vacuous.
func TestResultCacheEquivalenceUnderChaos(t *testing.T) {
	for _, seed := range []int64{11, 12, 13} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sys, err := New(Config{
				Leaves:            4,
				HeartbeatInterval: -1,
				ResultCacheBytes:  4 << 20,
				CacheAffinity:     true,
				Chaos: &chaos.Config{
					Seed: seed,
					Transport: chaos.TransportChaos{
						Delay:    0.3,
						MaxDelay: 500 * time.Microsecond,
					},
					Storage: chaos.StorageChaos{
						SlowRead:      0.2,
						SlowReadDelay: 200 * time.Microsecond,
					},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			ctx := context.Background()
			spec := workload.T1Spec()
			spec.Partitions = 4
			spec.RowsPerPart = 256
			meta, err := workload.Generate(ctx, sys.Router(), spec)
			if err == nil {
				err = sys.RegisterTable(ctx, meta)
			}
			if err != nil {
				t.Fatal(err)
			}

			queries := rescacheEquivQueries(40, seed)
			for i, q := range queries {
				cold, err := sys.Query(ctx, q, WithoutResultCache())
				if err != nil {
					t.Fatalf("cold %q: %v", q, err)
				}
				cached, stats, err := sys.QueryStats(ctx, q)
				if err != nil {
					t.Fatalf("cached %q: %v", q, err)
				}
				if got, want := renderRows(cached), renderRows(cold); got != want {
					t.Fatalf("query %d %q diverged (outcome=%s):\ncached: %s\ncold:   %s",
						i, q, stats.ResultCache, got, want)
				}
			}
			snap := sys.ResultCache().Snapshot()
			if snap.Hits == 0 || snap.SubsumedHits == 0 {
				t.Fatalf("reuse paths not exercised: hits=%d subsumed=%d misses=%d",
					snap.Hits, snap.SubsumedHits, snap.Misses)
			}
		})
	}
}

// TestResultCacheInvalidatedByIngest is the freshness invariant: a cached
// answer must never survive new data arriving for its table — each ingest
// batch re-registers the table, which drops every entry reading it.
func TestResultCacheInvalidatedByIngest(t *testing.T) {
	sys, err := New(Config{Leaves: 2, HeartbeatInterval: -1, ResultCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	schema := MustSchema(
		Field{Name: "ts", Type: Int64},
		Field{Name: "level", Type: Int64},
	)
	write := func(path, content string) {
		t.Helper()
		if err := sys.Router().WriteFile(ctx, path, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	write("/raw/app/0001.json", `{"ts": 1, "level": 3}
{"ts": 2, "level": 7}`)
	if _, err := sys.IngestOnce(ctx, "app", schema, "/raw/app", "/hdfs/app"); err != nil {
		t.Fatal(err)
	}

	const q = "SELECT ts, level FROM app WHERE level > 2"
	res, stats, err := sys.QueryStats(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResultCache != "miss" || len(res.Rows) != 2 {
		t.Fatalf("first run: outcome=%q rows=%d", stats.ResultCache, len(res.Rows))
	}
	if _, stats, _ = sys.QueryStats(ctx, q); stats.ResultCache != "hit" {
		t.Fatalf("repeat should hit, got %q", stats.ResultCache)
	}

	// New data lands: the cached entry must die with the re-registration.
	write("/raw/app/0002.json", `{"ts": 3, "level": 9}`)
	if _, err := sys.IngestOnce(ctx, "app", schema, "/raw/app", "/hdfs/app"); err != nil {
		t.Fatal(err)
	}
	res, stats, err = sys.QueryStats(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResultCache != "miss" {
		t.Fatalf("post-ingest outcome = %q, want miss (stale entry served)", stats.ResultCache)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("post-ingest rows = %d, want 3 (new record visible)", len(res.Rows))
	}
}

// TestIngestRestartInvalidatesStaleReads is the stale-read regression: a
// converter that lost its state (process restart) reuses sequence numbers
// and overwrites conv-00001 with different content. Without the rewrite
// invalidation fan-out (master/leaf footer caches, SSD chunks, result
// cache), readers would serve block offsets and bytes of the superseded
// file. The rewritten partition must be read back exactly.
func TestIngestRestartInvalidatesStaleReads(t *testing.T) {
	sys, err := New(Config{
		Leaves:            2,
		HeartbeatInterval: -1,
		ResultCacheBytes:  1 << 20,
		CacheBytes:        1 << 20,
		CachePrefixes:     []string{"/hdfs/"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	schema := MustSchema(
		Field{Name: "ts", Type: Int64},
		Field{Name: "msg", Type: String},
	)
	write := func(path, content string) {
		t.Helper()
		if err := sys.Router().WriteFile(ctx, path, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	write("/raw/logs/a.json", `{"ts": 1, "msg": "old-one"}`)
	if _, err := sys.IngestOnce(ctx, "logs", schema, "/raw/logs", "/hdfs/logs"); err != nil {
		t.Fatal(err)
	}
	// Warm every cache layer: footer metas, SSD chunks, result cache.
	const q = "SELECT ts, msg FROM logs"
	res, err := sys.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].S != "old-one" {
		t.Fatalf("warm read = %v", res.Rows)
	}

	// Simulate a converter restart: drop its in-memory state so the next
	// ingest rescans the (rewritten) source and reuses seq 1, overwriting
	// /hdfs/logs/conv-00001 with different rows and block layout.
	sys.convMu.Lock()
	delete(sys.convs, "logs")
	sys.convMu.Unlock()
	write("/raw/logs/a.json", `{"ts": 10, "msg": "new-one"}
{"ts": 11, "msg": "new-two"}`)
	if _, err := sys.IngestOnce(ctx, "logs", schema, "/raw/logs", "/hdfs/logs"); err != nil {
		t.Fatal(err)
	}

	res, stats, err := sys.QueryStats(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResultCache == "hit" {
		t.Fatal("rewritten table served from the result cache")
	}
	if len(res.Rows) != 2 || res.Rows[0][1].S != "new-one" || res.Rows[1][1].S != "new-two" {
		t.Fatalf("post-restart rows = %v, want the rewritten file's two rows", res.Rows)
	}
}
