// Product analysis (paper §II, Case 3): periodic revenue reporting reads
// the latest hot data together with historical data from the cold archive.
// Hot partitions live on the HDFS store; last year's partitions live on the
// Fatman-like /ffs/ archive — one query spans both without any copying, and
// the time-limit / processed-ratio option returns a partial answer when the
// cold tier is slow.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	feisu "repro"
)

func main() {
	sys, err := feisu.New(feisu.Config{Leaves: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	schema := feisu.MustSchema(
		feisu.Field{Name: "day", Type: feisu.Int64},
		feisu.Field{Name: "product", Type: feisu.String},
		feisu.Field{Name: "region", Type: feisu.String},
		feisu.Field{Name: "revenue", Type: feisu.Float64},
	)

	// Historical data: days 0..364 on the cold archive.
	cold, err := sys.NewLoader("revenue_2015", schema, "/ffs/revenue/2015")
	if err != nil {
		log.Fatal(err)
	}
	cold.SetPartitionRows(1024)
	appendDays(cold, 0, 365, 0.9)
	if err := cold.Close(); err != nil {
		log.Fatal(err)
	}

	// Fresh data: days 365..395 on HDFS.
	hot, err := sys.NewLoader("revenue_2016", schema, "/hdfs/revenue/2016")
	if err != nil {
		log.Fatal(err)
	}
	appendDays(hot, 365, 395, 1.2)
	if err := hot.Close(); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()

	fmt.Println("-- last-30-days indicator (hot tier only)")
	show(sys, ctx, "SELECT product, SUM(revenue) AS total FROM revenue_2016 GROUP BY product ORDER BY total DESC")

	fmt.Println("-- year-over-year tendency (cold archive)")
	show(sys, ctx, "SELECT region, AVG(revenue) AS avg_rev, COUNT(*) AS days FROM revenue_2015 WHERE product = 'maps' GROUP BY region ORDER BY avg_rev DESC")

	fmt.Println("-- interactive check with a response-time budget: accept a partial answer")
	res, stats, err := sys.QueryStats(ctx,
		"SELECT COUNT(*) FROM revenue_2015 WHERE revenue > 50",
		feisu.WithTimeLimit(2*time.Second), feisu.WithMinProcessedRatio(0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   count=%s processed=%.0f%% partial=%v (sim %s)\n\n",
		res.Rows[0][0].String(), res.ProcessedRatio*100, res.Partial, stats.SimTime.Round(time.Millisecond))

	fmt.Printf("cold-tier bytes read: %v\n", stats.BytesByDevice)
}

func appendDays(ld *feisu.Loader, from, to int, factor float64) {
	products := []string{"web-search", "maps", "music"}
	regions := []string{"bj", "sh", "gz"}
	for day := from; day < to; day++ {
		for pi, p := range products {
			for ri, r := range regions {
				rev := factor * float64(100+day%50+10*pi+5*ri)
				if err := ld.Append(feisu.Row{
					feisu.Int(int64(day)), feisu.Str(p), feisu.Str(r), feisu.Float(rev),
				}); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
}

func show(sys *feisu.System, ctx context.Context, q string) {
	res, err := sys.Query(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Print("   ")
		for i, v := range row {
			if i > 0 {
				fmt.Print("\t")
			}
			fmt.Print(v.String())
		}
		fmt.Println()
	}
	fmt.Println()
}
