// Federation with access control: three storage domains (local FS, HDFS,
// cold archive) under one SQL view, with the entry guard enforcing
// per-domain grants and quotas (paper §III-C, §V-A), and SmartIndex warming
// over a repeated-predicate stream (the Fig. 9 mechanism on a small scale).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	feisu "repro"
)

func main() {
	sys, err := feisu.New(feisu.Config{
		Leaves:                      4,
		EnableAuth:                  true,
		MaxConcurrentQueriesPerUser: 4,
		IndexCompress:               true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// One table per storage domain.
	loadEvents(sys, "events_local", "/data/events", 500)
	loadEvents(sys, "events_hdfs", "/hdfs/events", 800)
	loadEvents(sys, "events_cold", "/ffs/events", 300)

	// Identity setup: the analyst may read local + hdfs, not the archive.
	authy := sys.Authority()
	token, err := authy.Register("analyst")
	if err != nil {
		log.Fatal(err)
	}
	authy.Grant("analyst", "")     // local FS domain
	authy.Grant("analyst", "hdfs") // HDFS domain
	authy.MapDomain("analyst", "hdfs", "svc-analyst")

	ctx := context.Background()
	for _, table := range []string{"events_local", "events_hdfs", "events_cold"} {
		q := fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE kind = 'click'", table)
		res, err := sys.Query(ctx, q, feisu.WithToken(token))
		if err != nil {
			fmt.Printf("%-12s -> DENIED: %v\n", table, err)
			continue
		}
		fmt.Printf("%-12s -> %s click events\n", table, res.Rows[0][0].String())
	}

	// Warm SmartIndex with a repeated predicate and show the effect.
	fmt.Println("\nwarming SmartIndex on the hdfs domain:")
	const q = "SELECT COUNT(*) FROM events_hdfs WHERE value > 500 AND kind = 'click'"
	for i := 0; i < 3; i++ {
		start := time.Now()
		_, stats, err := sys.QueryStats(ctx, q, feisu.WithToken(token))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  run %d: sim=%s wall=%s hits=%d misses=%d reads=%d\n",
			i+1, stats.SimTime.Round(time.Microsecond), time.Since(start).Round(time.Microsecond),
			stats.Scan.IndexHits, stats.Scan.IndexMisses, stats.Scan.ColumnReads)
	}
	st := sys.IndexStats()
	fmt.Printf("index state: %d entries, %d bytes (compressed)\n", st.Entries, st.Bytes)
}

func loadEvents(sys *feisu.System, table, prefix string, n int) {
	schema := feisu.MustSchema(
		feisu.Field{Name: "id", Type: feisu.Int64},
		feisu.Field{Name: "kind", Type: feisu.String},
		feisu.Field{Name: "value", Type: feisu.Int64},
	)
	ld, err := sys.NewLoader(table, schema, prefix)
	if err != nil {
		log.Fatal(err)
	}
	ld.SetPartitionRows(256)
	kinds := []string{"click", "view", "scroll"}
	for i := 0; i < n; i++ {
		if err := ld.Append(feisu.Row{
			feisu.Int(int64(i)), feisu.Str(kinds[i%3]), feisu.Int(int64(i * 7 % 1000)),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := ld.Close(); err != nil {
		log.Fatal(err)
	}
}
