// Rapid product prototyping (paper §II, Case 2): before Feisu, one round
// of data preparation cost almost a week; with Feisu, fresh behaviour data
// is queryable as soon as the leaf-side conversion process picks it up.
// This example prototypes a "voice search" idea: raw JSON behaviour logs
// stream in, the watcher converts them to columnar partitions, and the
// product engineer demarcates the benefited user set with interactive
// queries — whose repeated predicates get personalized (pinned) indexes.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	feisu "repro"
)

func main() {
	sys, err := feisu.New(feisu.Config{
		Leaves:               4,
		PersonalizeThreshold: 2, // pin predicates after two uses
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()

	schema := feisu.MustSchema(
		feisu.Field{Name: "ts", Type: feisu.Int64},
		feisu.Field{Name: "uid", Type: feisu.Int64},
		feisu.Field{Name: "surface", Type: feisu.String}, // "voice" | "text"
		feisu.Field{Name: "query.len", Type: feisu.Int64},
		feisu.Field{Name: "success", Type: feisu.Bool},
	)

	// The conversion watcher: raw logs land on the local FS of online
	// machines; partitions go to HDFS.
	stop, err := sys.WatchJSON("behaviour", schema, "/var/log/voice", "/hdfs/behaviour", 5*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()

	// Day 1 of the experiment arrives as raw JSON lines.
	writeBatch(sys, 0)
	waitForRows(sys, ctx, 400)

	fmt.Println("-- first look: who uses voice at all?")
	show(sys, ctx, "SELECT surface, COUNT(*) AS n FROM behaviour GROUP BY surface ORDER BY n DESC")

	fmt.Println("-- refine: demarcate the benefited user set (repeated across iterations)")
	for round := 1; round <= 3; round++ {
		res, err := sys.Query(ctx,
			"SELECT COUNT(*) FROM behaviour WHERE surface = 'voice' AND success = TRUE AND query.len > 12")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   iteration %d: %s long successful voice queries\n", round, res.Rows[0][0].String())
	}
	fmt.Printf("   pinned as private index: %v\n\n", sys.History().PinnedPredicates())

	// Day 2 data arrives mid-prototyping; no re-preparation needed.
	writeBatch(sys, 1)
	waitForRows(sys, ctx, 800)
	fmt.Println("-- day 2 landed; the same question over fresh data, instantly:")
	show(sys, ctx, "SELECT surface, COUNT(*) AS n FROM behaviour WHERE success = TRUE GROUP BY surface ORDER BY n DESC")

	plan, err := sys.Explain("SELECT COUNT(*) FROM behaviour WHERE surface = 'voice' AND query.len > 12")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- how the engine runs it:")
	fmt.Println(plan)
}

func writeBatch(sys *feisu.System, day int) {
	var buf []byte
	for i := 0; i < 400; i++ {
		surface := "text"
		if i%3 == 0 {
			surface = "voice"
		}
		line := fmt.Sprintf(`{"ts": %d, "uid": %d, "surface": %q, "query": {"len": %d}, "success": %v}`,
			1700000000+day*86400+i, i%50, surface, 5+i%20, i%4 != 0)
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	path := fmt.Sprintf("/var/log/voice/day%d.json", day)
	if err := sys.Router().WriteFile(context.Background(), path, buf); err != nil {
		log.Fatal(err)
	}
}

func waitForRows(sys *feisu.System, ctx context.Context, want int64) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := sys.Query(ctx, "SELECT COUNT(*) FROM behaviour")
		if err == nil && res.Rows[0][0].I >= want {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("ingest never reached %d rows", want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func show(sys *feisu.System, ctx context.Context, q string) {
	res, err := sys.Query(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Print("   ")
		for i, v := range row {
			if i > 0 {
				fmt.Print("\t")
			}
			fmt.Print(v.String())
		}
		fmt.Println()
	}
	fmt.Println()
}
