// Quickstart: boot an in-process Feisu cluster, load a small table onto the
// simulated HDFS, and run aggregation queries through the full
// master/stem/leaf pipeline.
package main

import (
	"context"
	"fmt"
	"log"

	feisu "repro"
)

func main() {
	sys, err := feisu.New(feisu.Config{Leaves: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	schema := feisu.MustSchema(
		feisu.Field{Name: "id", Type: feisu.Int64},
		feisu.Field{Name: "product", Type: feisu.String},
		feisu.Field{Name: "revenue", Type: feisu.Float64},
	)
	ld, err := sys.NewLoader("sales", schema, "/hdfs/sales")
	if err != nil {
		log.Fatal(err)
	}
	ld.SetPartitionRows(256)
	products := []string{"web-search", "maps", "music", "encyclopedia"}
	for i := 0; i < 1000; i++ {
		if err := ld.Append(feisu.Row{
			feisu.Int(int64(i)),
			feisu.Str(products[i%len(products)]),
			feisu.Float(float64(i%97) * 1.5),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := ld.Close(); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	queries := []string{
		"SELECT COUNT(*) FROM sales",
		"SELECT product, SUM(revenue) AS total FROM sales GROUP BY product ORDER BY total DESC",
		"SELECT COUNT(*) FROM sales WHERE revenue > 100 AND product = 'maps'",
	}
	for _, q := range queries {
		res, err := sys.Query(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", q)
		for _, row := range res.Rows {
			for i, v := range row {
				if i > 0 {
					fmt.Print("\t")
				}
				fmt.Print(v.String())
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// The second run of a predicate is served from SmartIndex.
	if _, err := sys.Query(ctx, "SELECT COUNT(*) FROM sales WHERE revenue > 100 AND product = 'maps'"); err != nil {
		log.Fatal(err)
	}
	st := sys.IndexStats()
	fmt.Printf("SmartIndex: %d entries, %d hits, %d misses\n", st.Entries, st.Hits, st.Misses)
}
