// Debugging the search engine (paper §II, Case 1): a system engineer hunts
// a malfunction whose evidence spans storage domains — service logs on the
// online machines' local filesystems and the page index on HDFS. The
// trial-and-error session narrows the problem by adding predicates one by
// one; SmartIndex makes each refinement cheaper than the last because every
// already-evaluated predicate is answered from cached bitmaps.
package main

import (
	"context"
	"fmt"
	"log"

	feisu "repro"
)

func main() {
	sys, err := feisu.New(feisu.Config{Leaves: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	loadServiceLogs(sys)
	loadPageIndex(sys)

	ctx := context.Background()
	// The engineer's session, exactly the trial-and-error pattern of
	// §IV-A: broad first, then predicates accumulate.
	session := []string{
		// 1. How bad is it overall? (local-FS logs)
		"SELECT COUNT(*) FROM servicelog WHERE status != 200",
		// 2. Same broad filter, narrowed to the retrieval service.
		"SELECT COUNT(*) FROM servicelog WHERE status != 200 AND component = 'retrieval'",
		// 3. Which shards? Note both prior predicates are index hits now.
		"SELECT shard, COUNT(*) AS errs FROM servicelog WHERE status != 200 AND component = 'retrieval' GROUP BY shard ORDER BY errs DESC LIMIT 3",
		// 4. Cross-domain join: do the failing shards hold stale pages?
		//    (pageindex lives on the HDFS store, servicelog on local FS.)
		"SELECT s.shard, MIN(p.crawl_ts) AS oldest FROM servicelog s JOIN pageindex p ON s.shard = p.shard WHERE s.status != 200 GROUP BY s.shard ORDER BY oldest LIMIT 3",
	}
	for i, q := range session {
		res, stats, err := sys.QueryStats(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("step %d: %s\n", i+1, q)
		for _, row := range res.Rows {
			fmt.Print("   ")
			for j, v := range row {
				if j > 0 {
					fmt.Print("\t")
				}
				fmt.Print(v.String())
			}
			fmt.Println()
		}
		fmt.Printf("   index hits=%d misses=%d column-reads=%d\n\n",
			stats.Scan.IndexHits, stats.Scan.IndexMisses, stats.Scan.ColumnReads)
	}

	st := sys.IndexStats()
	fmt.Printf("session total: %d predicates cached, %d reused\n", st.Entries, st.Hits+st.DerivedHits)
}

func loadServiceLogs(sys *feisu.System) {
	schema := feisu.MustSchema(
		feisu.Field{Name: "ts", Type: feisu.Int64},
		feisu.Field{Name: "component", Type: feisu.String},
		feisu.Field{Name: "shard", Type: feisu.Int64},
		feisu.Field{Name: "status", Type: feisu.Int64},
		feisu.Field{Name: "latency_ms", Type: feisu.Float64},
	)
	// Local filesystem domain: no /hdfs/ prefix.
	ld, err := sys.NewLoader("servicelog", schema, "/var/log/search")
	if err != nil {
		log.Fatal(err)
	}
	ld.SetPartitionRows(512)
	components := []string{"retrieval", "ranking", "frontend"}
	for i := 0; i < 2000; i++ {
		status := int64(200)
		// Shard 7's retrieval service is the planted malfunction.
		if i%3 == 0 && i%16 == 7 {
			status = 500
		}
		if err := ld.Append(feisu.Row{
			feisu.Int(int64(1700000000 + i)),
			feisu.Str(components[i%3]),
			feisu.Int(int64(i % 16)),
			feisu.Int(status),
			feisu.Float(float64(i%40) * 2.5),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := ld.Close(); err != nil {
		log.Fatal(err)
	}
}

func loadPageIndex(sys *feisu.System) {
	schema := feisu.MustSchema(
		feisu.Field{Name: "shard", Type: feisu.Int64},
		feisu.Field{Name: "url", Type: feisu.String},
		feisu.Field{Name: "crawl_ts", Type: feisu.Int64},
	)
	ld, err := sys.NewLoader("pageindex", schema, "/hdfs/pageindex")
	if err != nil {
		log.Fatal(err)
	}
	for shard := 0; shard < 16; shard++ {
		ts := int64(1699990000)
		if shard == 7 {
			ts = 1690000000 // the stale shard
		}
		if err := ld.Append(feisu.Row{
			feisu.Int(int64(shard)),
			feisu.Str(fmt.Sprintf("http://index/shard-%d", shard)),
			feisu.Int(ts),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := ld.Close(); err != nil {
		log.Fatal(err)
	}
}
