package feisu

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func visitSchema() *Schema {
	return MustSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "url", Type: String},
		Field{Name: "clicks", Type: Int64},
		Field{Name: "score", Type: Float64},
	)
}

func loadVisits(t *testing.T, sys *System, prefix string, n int) {
	t.Helper()
	ld, err := sys.NewLoader("visits", visitSchema(), prefix)
	if err != nil {
		t.Fatal(err)
	}
	ld.SetPartitionRows(n / 4)
	ld.SetBlockRows(32)
	for i := 0; i < n; i++ {
		if err := ld.Append(Row{
			Int(int64(i)), Str(fmt.Sprintf("http://u/%d", i%7)), Int(int64(i % 10)), Float(float64(i) / float64(n)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSystemQuickstart(t *testing.T) {
	sys, err := New(Config{Leaves: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 400)

	ctx := context.Background()
	res, err := sys.Query(ctx, "SELECT COUNT(*) FROM visits")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 400 {
		t.Errorf("count = %v", res.Rows[0][0])
	}

	res, err = sys.Query(ctx, "SELECT url, COUNT(*) AS n FROM visits WHERE clicks > 5 GROUP BY url ORDER BY n DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Columns[0] != "url" {
		t.Errorf("rows = %+v", res.Rows)
	}
}

func TestSystemOnColdArchive(t *testing.T) {
	sys, err := New(Config{Leaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/ffs/visits", 100)
	res, _, err := sys.QueryStats(context.Background(), "SELECT SUM(clicks) FROM visits")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 450 {
		t.Errorf("sum = %v", res.Rows[0][0])
	}
}

func TestSystemSmartIndexStats(t *testing.T) {
	sys, err := New(Config{Leaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 200)
	ctx := context.Background()
	if _, err := sys.Query(ctx, "SELECT COUNT(*) FROM visits WHERE clicks > 4"); err != nil {
		t.Fatal(err)
	}
	st := sys.IndexStats()
	if st.Stored == 0 || st.Misses == 0 {
		t.Errorf("cold stats = %+v", st)
	}
	if _, err := sys.Query(ctx, "SELECT COUNT(*) FROM visits WHERE clicks > 4"); err != nil {
		t.Fatal(err)
	}
	if sys.IndexStats().Hits == 0 {
		t.Error("warm query should hit the index")
	}
	sys.ResetIndexCounters()
	if sys.IndexStats().Hits != 0 {
		t.Error("counters should reset")
	}
}

func TestSystemBTreeBaseline(t *testing.T) {
	sys, err := New(Config{Leaves: 2, Index: IndexBTree})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 100)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		res, err := sys.Query(ctx, "SELECT COUNT(*) FROM visits WHERE clicks >= 5")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].I != 50 {
			t.Errorf("count = %v", res.Rows[0][0])
		}
	}
	if st := sys.IndexStats(); st.Stored != 0 {
		t.Error("btree config should not populate SmartIndex stats")
	}
}

func TestSystemNoIndex(t *testing.T) {
	sys, err := New(Config{Leaves: 1, Index: IndexNone, Stems: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/visits", 50)
	res, err := sys.Query(context.Background(), "SELECT MAX(id) FROM visits")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 49 {
		t.Errorf("max = %v", res.Rows[0][0])
	}
}

func TestSystemWithAuth(t *testing.T) {
	sys, err := New(Config{Leaves: 2, EnableAuth: true, MaxConcurrentQueriesPerUser: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 100)

	authy := sys.Authority()
	token, err := authy.Register("li")
	if err != nil {
		t.Fatal(err)
	}
	authy.Grant("li", "hdfs")

	ctx := context.Background()
	if _, err := sys.Query(ctx, "SELECT COUNT(*) FROM visits"); err == nil {
		t.Error("query without token should fail under auth")
	}
	res, err := sys.Query(ctx, "SELECT COUNT(*) FROM visits", WithToken(token))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 100 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestSystemCacheOption(t *testing.T) {
	sys, err := New(Config{Leaves: 2, CacheBytes: 1 << 20, CachePrefixes: []string{"/hdfs/"}})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 200)
	ctx := context.Background()
	// No-index config would cache on filter reads; with SmartIndex the
	// projection reads still flow through the cache.
	if _, err := sys.Query(ctx, "SELECT SUM(id) FROM visits"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query(ctx, "SELECT SUM(id) FROM visits", WithoutResultReuse()); err != nil {
		t.Fatal(err)
	}
	if sys.CacheMissRatio() >= 1 {
		t.Errorf("miss ratio = %v", sys.CacheMissRatio())
	}
}

func TestLoaderJSON(t *testing.T) {
	sys, err := New(Config{Leaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	schema := MustSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "user.name", Type: String},
		Field{Name: "clicks.pos", Type: Int64, Repeated: true},
	)
	ld, err := sys.NewLoader("events", schema, "/hdfs/events")
	if err != nil {
		t.Fatal(err)
	}
	docs := []string{
		`{"id": 1, "user": {"name": "li"}, "clicks": [{"pos": 1}, {"pos": 4}]}`,
		`{"id": 2, "user": {"name": "wang"}}`,
	}
	for _, d := range docs {
		if err := ld.AppendJSON([]byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(context.Background(),
		"SELECT id, COUNT(clicks.pos) WITHIN RECORD AS n FROM events ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].I != 2 || res.Rows[1][1].I != 0 {
		t.Errorf("rows = %+v", res.Rows)
	}
}

func TestLoaderErrors(t *testing.T) {
	sys, err := New(Config{Leaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.NewLoader("", visitSchema(), "/x"); err == nil {
		t.Error("empty name should fail")
	}
	ld, _ := sys.NewLoader("t", visitSchema(), "/t")
	_ = ld.Append(Row{Int(1), Str("u"), Int(1), Float(0)})
	if err := ld.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ld.Append(Row{Int(2), Str("u"), Int(1), Float(0)}); err == nil {
		t.Error("append after close should fail")
	}
	if err := ld.Close(); err != nil {
		t.Errorf("double close should be a no-op: %v", err)
	}
}

func TestQueryTimeLimitOptions(t *testing.T) {
	sys, err := New(Config{Leaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 100)
	res, err := sys.Query(context.Background(), "SELECT COUNT(*) FROM visits",
		WithTimeLimit(5*time.Second), WithMinProcessedRatio(0.5), WithTaskTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 100 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestHeartbeatLoop(t *testing.T) {
	sys, err := New(Config{Leaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.StartHeartbeats(10 * time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	sys.Close()
}

func TestNullColumnsNegationEndToEnd(t *testing.T) {
	// NULLs satisfy neither a predicate nor its negation; warm index runs
	// must agree with cold ones even though bit-NOT derivations are
	// disabled on NULL-bearing blocks.
	sys, err := New(Config{Leaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	schema := MustSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "v", Type: Int64},
	)
	ld, err := sys.NewLoader("nullable", schema, "/hdfs/nullable")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 90; i++ {
		v := Null()
		if i%3 != 0 { // a third of the rows are NULL
			v = Int(int64(i % 10))
		}
		if err := ld.Append(Row{Int(int64(i)), v}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Close(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	queries := []string{
		"SELECT COUNT(*) FROM nullable WHERE v > 5",
		"SELECT COUNT(*) FROM nullable WHERE NOT (v > 5)",
		"SELECT COUNT(*) FROM nullable WHERE v <= 5",
	}
	cold := make([]int64, len(queries))
	for i, q := range queries {
		res, err := sys.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		cold[i] = res.Rows[0][0].I
	}
	// pos>5: i%10 in 6..9 over non-null rows; NOT and <= agree and both
	// exclude the 30 NULL rows.
	if cold[1] != cold[2] {
		t.Errorf("NOT(v>5)=%d but v<=5=%d", cold[1], cold[2])
	}
	if cold[0]+cold[1] >= 90 {
		t.Errorf("NULL rows leaked into a predicate: %d + %d", cold[0], cold[1])
	}
	for i, q := range queries { // warm: same answers via the index
		res, err := sys.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].I != cold[i] {
			t.Errorf("warm %q = %v, cold %v", q, res.Rows[0][0].I, cold[i])
		}
	}
}

func TestStorageAgreementConfig(t *testing.T) {
	sys, err := New(Config{Leaves: 2, StorageMaxConcurrentReads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 200)
	// Queries still work under a tight agreement; reads serialize.
	res, err := sys.Query(context.Background(), "SELECT COUNT(*) FROM visits WHERE clicks > 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 140 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestIndexSweeperRuns(t *testing.T) {
	sys, err := New(Config{Leaves: 1, IndexTTL: time.Nanosecond, HeartbeatInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	loadVisits(t, sys, "/hdfs/visits", 100)
	if _, err := sys.Query(context.Background(), "SELECT COUNT(*) FROM visits WHERE clicks > 3"); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	deadline := time.Now().Add(2 * time.Second)
	for sys.IndexStats().Entries > 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweeper never evicted expired entries")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestExplainAPI(t *testing.T) {
	sys, err := New(Config{Leaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 100)
	desc, err := sys.Explain("SELECT url, COUNT(*) FROM visits WHERE clicks > 3 GROUP BY url")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mode: aggregate", "clicks > 3 [indexable]", "leaf sub-plan"} {
		if !containsStr(desc, want) {
			t.Errorf("Explain missing %q:\n%s", want, desc)
		}
	}
	if _, err := sys.Explain("SELECT nope FROM visits"); err == nil {
		t.Error("bad query should fail to explain")
	}
	if _, err := sys.Explain("not sql"); err == nil {
		t.Error("unparseable query should fail")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestLoaderMultiplePartitionsAndRepeatedFields(t *testing.T) {
	sys, err := New(Config{Leaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	schema := MustSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "tags", Type: String, Repeated: true},
	)
	ld, err := sys.NewLoader("tagged", schema, "/hdfs/tagged")
	if err != nil {
		t.Fatal(err)
	}
	ld.SetPartitionRows(10)
	for i := 0; i < 25; i++ {
		rec := [][]Value{{Int(int64(i))}, nil}
		for j := 0; j <= i%3; j++ {
			rec[1] = append(rec[1], Str(fmt.Sprintf("t%d", j)))
		}
		if err := ld.AppendRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(ld.Meta().Partitions); got != 3 { // 10+10+5
		t.Errorf("partitions = %d", got)
	}
	res2, err := sys.Query(context.Background(),
		"SELECT COUNT(*) FROM tagged WHERE tags = 't2'")
	if err != nil {
		t.Fatal(err)
	}
	// tags contains "t2" when i%3 == 2: i in {2,5,...,23} -> 8 records.
	if res2.Rows[0][0].I != 8 {
		t.Errorf("repeated-field count = %v", res2.Rows[0][0])
	}
}
