package feisu

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/workload"
)

// parallelScanRun executes a deterministic query stream on a fresh system
// with the given intra-task scan parallelism and returns per-query rendered
// rows and ScanStats plus the final aggregated SmartIndex counters. Hedging
// is disabled: it duplicates tasks off wall-clock EWMAs, which would make
// the strict stat comparison racy.
func parallelScanRun(t *testing.T, workers int, wlSeed, qSeed int64) ([]string, []exec.ScanStats, core.Stats) {
	t.Helper()
	sys, err := New(Config{
		Leaves:            4,
		ScanWorkers:       workers,
		CacheBytes:        64 << 20,
		HeartbeatInterval: -1,
		HedgeDelay:        -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	spec := workload.T1Spec()
	spec.Partitions = 4
	spec.RowsPerPart = 384
	spec.Seed = wlSeed
	meta, err := workload.Generate(ctx, sys.Router(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterTable(ctx, meta); err != nil {
		t.Fatal(err)
	}
	queries := generateEquivalenceQueries(30, qSeed)
	rows := make([]string, len(queries))
	scans := make([]exec.ScanStats, len(queries))
	for i, q := range queries {
		res, stats, err := sys.QueryStats(ctx, q)
		if err != nil {
			t.Fatalf("workers=%d query %q: %v", workers, q, err)
		}
		rows[i] = renderRows(res)
		scans[i] = stats.Scan
	}
	return rows, scans, sys.IndexStats()
}

// TestParallelScanEquivalence is the tentpole invariant: the parallel leaf
// scan (8 workers striping blocks) must be bit-identical to the serial path
// (1 worker) — same rows, same per-query ScanStats, same SmartIndex
// hit/miss/store counters — across three workload seeds. Run under -race by
// scripts/verify.sh, this doubles as the concurrency-safety check for
// SmartIndex and the SSD cache under concurrent scanners.
func TestParallelScanEquivalence(t *testing.T) {
	for _, seed := range []int64{11, 22, 33} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			serialRows, serialScans, serialIdx := parallelScanRun(t, 1, seed, seed*7)
			parRows, parScans, parIdx := parallelScanRun(t, 8, seed, seed*7)
			queries := generateEquivalenceQueries(30, seed*7)
			for i := range serialRows {
				if parRows[i] != serialRows[i] {
					t.Fatalf("rows diverged on %q:\nparallel: %s\nserial:   %s", queries[i], parRows[i], serialRows[i])
				}
				if !reflect.DeepEqual(parScans[i], serialScans[i]) {
					t.Fatalf("ScanStats diverged on %q:\nparallel: %+v\nserial:   %+v", queries[i], parScans[i], serialScans[i])
				}
			}
			if serialIdx.Hits+serialIdx.DerivedHits == 0 {
				t.Fatal("serial run recorded no SmartIndex hits; the comparison is vacuous")
			}
			if !reflect.DeepEqual(parIdx, serialIdx) {
				t.Fatalf("SmartIndex counters diverged:\nparallel: %+v\nserial:   %+v", parIdx, serialIdx)
			}
		})
	}
}
