package feisu

import (
	"context"
	"fmt"

	"repro/internal/btree"
	"repro/internal/colstore"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
)

// newBTreeIndex adapts the baseline to exec.IndexSource.
func newBTreeIndex(model *sim.CostModel) exec.IndexSource {
	idx := btree.NewIndex()
	idx.Model = model
	return idx
}

// Loader streams rows into a new table, rotating partition files as it
// goes, and registers the table in the master catalog on Close. The path
// prefix selects the storage system: "/hdfs/..." lands on the replicated
// DFS, "/ffs/..." on the cold archive, anything else on the local store.
type Loader struct {
	sys          *System
	name         string
	schema       *Schema
	pathPrefix   string
	rowsPerPart  int
	rowsPerBlock int

	writer *colstore.Writer
	inPart int
	meta   *plan.TableMeta
	closed bool
}

// NewLoader starts loading a table. rows are split into partitions of
// 64Ki records by default; SetPartitionRows overrides before the first
// Append.
func (s *System) NewLoader(name string, schema *Schema, pathPrefix string) (*Loader, error) {
	if name == "" || schema == nil || schema.Len() == 0 {
		return nil, fmt.Errorf("feisu: loader needs a table name and schema")
	}
	return &Loader{
		sys:          s,
		name:         name,
		schema:       schema,
		pathPrefix:   pathPrefix,
		rowsPerPart:  64 << 10,
		rowsPerBlock: 4096,
		meta:         &plan.TableMeta{Name: name, Schema: schema},
	}, nil
}

// SetPartitionRows sets the records per partition file.
func (l *Loader) SetPartitionRows(n int) {
	if n > 0 {
		l.rowsPerPart = n
	}
}

// SetBlockRows sets the records per block inside each partition.
func (l *Loader) SetBlockRows(n int) {
	if n > 0 {
		l.rowsPerBlock = n
	}
}

// Append adds one record of scalar values.
func (l *Loader) Append(row Row) error {
	if err := l.ensureWriter(); err != nil {
		return err
	}
	if err := l.writer.Append(row); err != nil {
		return err
	}
	return l.maybeRotate()
}

// AppendRecord adds one record with per-field value lists (repeated
// fields).
func (l *Loader) AppendRecord(rec [][]Value) error {
	if err := l.ensureWriter(); err != nil {
		return err
	}
	if err := l.writer.AppendRecord(rec); err != nil {
		return err
	}
	return l.maybeRotate()
}

// AppendJSON flattens one JSON document into the schema's columns (paper
// §III-A: nested json is flattened into columns).
func (l *Loader) AppendJSON(doc []byte) error {
	rec, err := colstore.FlattenJSON(l.schema, doc)
	if err != nil {
		return err
	}
	return l.AppendRecord(rec)
}

func (l *Loader) ensureWriter() error {
	if l.closed {
		return fmt.Errorf("feisu: loader for %q already closed", l.name)
	}
	if l.writer == nil {
		l.writer = colstore.NewWriter(l.schema, l.rowsPerBlock)
		l.inPart = 0
	}
	return nil
}

func (l *Loader) maybeRotate() error {
	l.inPart++
	if l.inPart >= l.rowsPerPart {
		return l.flushPartition()
	}
	return nil
}

func (l *Loader) flushPartition() error {
	if l.writer == nil || l.inPart == 0 {
		return nil
	}
	data, err := l.writer.Finish()
	if err != nil {
		return err
	}
	path := fmt.Sprintf("%s/part-%05d", l.pathPrefix, len(l.meta.Partitions))
	if err := l.sys.router.WriteFile(context.Background(), path, data); err != nil {
		return err
	}
	l.meta.Partitions = append(l.meta.Partitions, plan.PartitionMeta{
		Path:  path,
		Rows:  int64(l.inPart),
		Bytes: int64(len(data)),
	})
	l.writer = nil
	l.inPart = 0
	return nil
}

// Close flushes the last partition and registers the table.
func (l *Loader) Close() error {
	if l.closed {
		return nil
	}
	if err := l.flushPartition(); err != nil {
		return err
	}
	l.closed = true
	return l.sys.master.RegisterTable(context.Background(), l.meta)
}

// Meta returns the catalog entry being built (complete after Close).
func (l *Loader) Meta() *plan.TableMeta { return l.meta }
