package feisu

import (
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/workload"
)

// newGoldenSystem builds a one-partition deployment whose plans and traces
// are deterministic: serial scans (ScanWorkers -1), no background heartbeat
// ticker, admission control on (so EXPLAIN ANALYZE carries the queue-wait
// line), and T1 resident on the in-memory store so placement never depends
// on replica choice.
func newGoldenSystem(t *testing.T) *System {
	t.Helper()
	sys, err := New(Config{
		Leaves:               2,
		HeartbeatInterval:    -1,
		ScanWorkers:          -1,
		MaxConcurrentQueries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })

	spec := workload.T1Spec()
	spec.PathPrefix = "/mem/t1"
	spec.Partitions = 1
	spec.RowsPerPart = 256
	spec.Fields = 10
	ctx := context.Background()
	meta, err := workload.Generate(ctx, sys.Router(), spec)
	if err == nil {
		err = sys.RegisterTable(ctx, meta)
	}
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// normalizeTrace blanks the volatile tokens of an execution trace — sim and
// wall durations vary with the host, and the critical-path section adds a
// total= token and percentage shares — while keeping structure, counters and
// attributes exact. Fixed-width columns pad to the rendered duration's
// length, so the spacing adjacent to a normalized token (and any trailing
// whitespace) is collapsed too.
var (
	durToken   = regexp.MustCompile(`(^|\s)(sim|wall|total)=\S+`)
	pctToken   = regexp.MustCompile(`\d+\.\d%`)
	durPad     = regexp.MustCompile(`<dur> +`)
	pctPad     = regexp.MustCompile(` +<pct>`)
	lineSuffix = regexp.MustCompile(`(?m)[ \t]+$`)
)

func normalizeTrace(text string) string {
	text = durToken.ReplaceAllString(text, "$1$2=<dur>")
	text = pctToken.ReplaceAllString(text, "<pct>")
	text = durPad.ReplaceAllString(text, "<dur> ")
	text = pctPad.ReplaceAllString(text, " <pct>")
	return lineSuffix.ReplaceAllString(text, "")
}

// checkGolden compares got against testdata/<name>.golden. Run with
// UPDATE_GOLDEN=1 to regenerate the files after an intentional format
// change (see docs/TESTING.md).
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if !strings.HasSuffix(got, "\n") {
		got += "\n"
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with UPDATE_GOLDEN=1 to create it): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file.\ngot:\n%s\nwant:\n%s\n(run UPDATE_GOLDEN=1 go test if the change is intentional)",
			path, got, want)
	}
}

// resultText reassembles a textResult (EXPLAIN output) into the original
// multi-line string.
func resultText(res *Result) string {
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		lines[i] = row[0].S
	}
	return strings.Join(lines, "\n")
}

func TestExplainGolden(t *testing.T) {
	sys := newGoldenSystem(t)
	res, err := sys.Query(context.Background(),
		"EXPLAIN SELECT uid, clicks FROM T1 WHERE clicks > 3 AND dwell <= 120 ORDER BY uid LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain", resultText(res))
}

func TestExplainAnalyzeGolden(t *testing.T) {
	sys := newGoldenSystem(t)
	res, err := sys.Query(context.Background(),
		"EXPLAIN ANALYZE SELECT COUNT(*), SUM(clicks) FROM T1 WHERE clicks > 3")
	if err != nil {
		t.Fatal(err)
	}
	text := normalizeTrace(resultText(res))
	// The admission queue-wait line must be part of the golden trace.
	if !strings.Contains(text, "admission") || !strings.Contains(text, "wait=") {
		t.Fatalf("EXPLAIN ANALYZE trace lacks the admission queue-wait line:\n%s", text)
	}
	checkGolden(t, "explain_analyze", text)
}

// TestExplainAnalyzeResultCacheGolden pins the EXPLAIN ANALYZE trace for
// both sides of the semantic result cache: the first execution reports the
// miss and runs tasks; the repeat is served from the cache — its trace is a
// master/result-cache span with zero task spans.
func TestExplainAnalyzeResultCacheGolden(t *testing.T) {
	sys, err := New(Config{
		Leaves:               2,
		HeartbeatInterval:    -1,
		ScanWorkers:          -1,
		MaxConcurrentQueries: 2,
		ResultCacheBytes:     1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	spec := workload.T1Spec()
	spec.PathPrefix = "/mem/t1"
	spec.Partitions = 1
	spec.RowsPerPart = 256
	spec.Fields = 10
	ctx := context.Background()
	meta, err := workload.Generate(ctx, sys.Router(), spec)
	if err == nil {
		err = sys.RegisterTable(ctx, meta)
	}
	if err != nil {
		t.Fatal(err)
	}

	const sql = "EXPLAIN ANALYZE SELECT uid, clicks FROM T1 WHERE clicks > 3"
	miss, err := sys.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain_analyze_rescache_miss", normalizeTrace(resultText(miss)))

	hit, err := sys.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	text := normalizeTrace(resultText(hit))
	if !strings.Contains(text, "result-cache") {
		t.Fatalf("cache-hit trace lacks the result-cache span:\n%s", text)
	}
	checkGolden(t, "explain_analyze_rescache_hit", text)
}

// newShuffleGoldenSystem builds a deterministic forced-repartition
// deployment: one leaf (so map-task placement is fixed), no stems (the
// master is the sole reducer), serial scans, and the join pair resident
// in memory. spillGrant <= 0 keeps the default reducer memory grant.
func newShuffleGoldenSystem(t *testing.T, spillGrant int64) *System {
	t.Helper()
	sys, err := New(Config{
		Leaves:               1,
		HeartbeatInterval:    -1,
		ScanWorkers:          -1,
		MaxConcurrentQueries: 2,
		BroadcastThreshold:   1,
		ShufflePartitions:    2,
		ShuffleMemoryBytes:   spillGrant,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })

	spec := workload.DefaultJoinSpec()
	spec.PathPrefix = "/mem/join"
	spec.FactPartitions = 2
	spec.FactRowsPerPart = 32
	spec.DimPartitions = 1
	spec.DimRowsPerPart = 20
	ctx := context.Background()
	factMeta, dimMeta, _, _, err := workload.GenerateJoin(ctx, sys.Router(), spec)
	if err == nil {
		err = sys.RegisterTable(ctx, factMeta)
	}
	if err == nil {
		err = sys.RegisterTable(ctx, dimMeta)
	}
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

const shuffleGoldenQuery = "SELECT f.id AS a, f.v AS b, d.name AS c FROM orders f JOIN users d ON f.k = d.k ORDER BY a"

// TestExplainShuffleGolden pins the repartitioned plan rendering: keys,
// shipped columns, partition count and the reducer memory grant.
func TestExplainShuffleGolden(t *testing.T) {
	sys := newShuffleGoldenSystem(t, 0)
	res, err := sys.Query(context.Background(), "EXPLAIN "+shuffleGoldenQuery)
	if err != nil {
		t.Fatal(err)
	}
	text := resultText(res)
	if !strings.Contains(text, "repartition") {
		t.Fatalf("forced-shuffle plan did not repartition:\n%s", text)
	}
	checkGolden(t, "explain_shuffle", text)
}

// TestExplainBroadcastJoinGolden pins the broadcast plan for the same
// query under the default threshold — the dimension is small, so the
// planner must ship it whole instead of repartitioning.
func TestExplainBroadcastJoinGolden(t *testing.T) {
	sys, err := New(Config{
		Leaves:               1,
		HeartbeatInterval:    -1,
		ScanWorkers:          -1,
		MaxConcurrentQueries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	spec := workload.DefaultJoinSpec()
	spec.PathPrefix = "/mem/join"
	spec.FactPartitions = 2
	spec.FactRowsPerPart = 32
	spec.DimPartitions = 1
	spec.DimRowsPerPart = 20
	ctx := context.Background()
	factMeta, dimMeta, _, _, err := workload.GenerateJoin(ctx, sys.Router(), spec)
	if err == nil {
		err = sys.RegisterTable(ctx, factMeta)
	}
	if err == nil {
		err = sys.RegisterTable(ctx, dimMeta)
	}
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(ctx, "EXPLAIN "+shuffleGoldenQuery)
	if err != nil {
		t.Fatal(err)
	}
	text := resultText(res)
	if !strings.Contains(text, "broadcast") || strings.Contains(text, "repartition") {
		t.Fatalf("small dimension did not broadcast:\n%s", text)
	}
	checkGolden(t, "explain_broadcast_join", text)
}

// TestExplainAnalyzeShuffleGolden pins the executed repartition trace:
// map task spans in ordinal order, the shuffle-transfer stage with
// per-partition byte counts, per-partition reduce spans, and the
// critical path's shuffle-transfer segment.
func TestExplainAnalyzeShuffleGolden(t *testing.T) {
	sys := newShuffleGoldenSystem(t, 0)
	res, err := sys.Query(context.Background(), "EXPLAIN ANALYZE "+shuffleGoldenQuery)
	if err != nil {
		t.Fatal(err)
	}
	text := normalizeTrace(resultText(res))
	for _, want := range []string{"shuffle-map", "shuffle-transfer", "shuffle-reduce", "critical path"} {
		if !strings.Contains(text, want) {
			t.Fatalf("EXPLAIN ANALYZE trace lacks %q:\n%s", want, text)
		}
	}
	checkGolden(t, "explain_analyze_shuffle", text)
}

// TestExplainAnalyzeShuffleSpillGolden pins the same trace under a
// one-byte reducer memory grant: the plan header shows the tiny grant
// and the partitioned operators spill every build row.
func TestExplainAnalyzeShuffleSpillGolden(t *testing.T) {
	sys := newShuffleGoldenSystem(t, 1)
	res, stats, err := sys.QueryStats(context.Background(), "EXPLAIN ANALYZE "+shuffleGoldenQuery)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShuffleSpillBytes == 0 {
		t.Fatal("one-byte memory grant did not spill")
	}
	checkGolden(t, "explain_analyze_shuffle_spill", normalizeTrace(resultText(res)))
}
