.PHONY: build test race vet verify bench

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

# verify is the full pre-merge gate: vet + build + tier-1 tests + race suite.
verify:
	./scripts/verify.sh

bench:
	go test -bench=. -benchmem ./...
