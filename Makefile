.PHONY: build test race vet verify bench bench-smoke

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

# verify is the full pre-merge gate: gofmt + vet + build + tier-1 tests +
# race suite + internal/cluster coverage floor + experiment smokes.
verify:
	./scripts/verify.sh

bench:
	go test -bench=. -benchmem ./...

# bench-smoke runs the trimmed experiment streams that gate on a floor
# (chaos correctness, parscan 2x scan-time speedup) — fast enough for CI.
bench-smoke:
	go run ./cmd/feisu-bench -exp chaos -seed 1 -short -scale small
	go run ./cmd/feisu-bench -exp parscan -short -scale small
	go run ./cmd/feisu-bench -exp rescache -short -scale small
	go run ./cmd/feisu-bench -exp zipfidx -short -scale small
